//! A deterministic, Linux-flavored synthetic corpus generator.
//!
//! The paper evaluates SuperC on the x86 Linux kernel (version 2.6.33.3),
//! which this reproduction cannot ship. This crate generates a corpus
//! that reproduces the kernel's *interaction patterns* — the things
//! Tables 1–3 catalogue and Figures 8–10 measure — at configurable scale:
//!
//! * include-guarded headers shared across most compilation units
//!   (`module.h` included by ~half of Linux's C files, Table 2b);
//! * `CONFIG_*` configuration variables that are never defined (free
//!   macros);
//! * multiply-defined macros (`BITS_PER_LONG`, Fig. 2) and macros
//!   conditionally expanding to other macros (`cpu_to_le32`, Figs. 3–4);
//! * token pasting and stringification, including under implicit
//!   conditionals (Fig. 5);
//! * conditional-heavy array initializers (Fig. 6, the construct with
//!   exponentially many configurations);
//! * conditionals splitting C statements (Fig. 1), nested conditionals,
//!   non-boolean `#if` expressions (`NR_CPUS < 256`), computed includes,
//!   `#error` branches, variadic macros, inline `asm`, and typedefs.
//!
//! Generation is fully deterministic given [`CorpusSpec::seed`].
//!
//! # Examples
//!
//! ```
//! use superc_cpp::FileSystem as _;
//! use superc_kernelgen::{generate, CorpusSpec};
//!
//! let corpus = generate(&CorpusSpec { units: 3, ..CorpusSpec::small() });
//! assert_eq!(corpus.units.len(), 3);
//! assert!(corpus.fs.read("include/linux/module.h").is_some());
//! ```

use std::fmt::Write as _;

#[cfg(test)]
use superc_cpp::FileSystem;
use superc_cpp::MemFs;
use superc_util::SmallRng;

/// Parameters for corpus generation.
#[derive(Clone, Debug)]
pub struct CorpusSpec {
    /// Number of compilation units (`src/unitN.c`).
    pub units: usize,
    /// RNG seed; identical specs generate identical corpora.
    pub seed: u64,
    /// Number of generated subsystem headers.
    pub subsystem_headers: usize,
    /// Pool of `CONFIG_*` variables to draw from.
    pub config_vars: usize,
    /// Functions per unit, inclusive range.
    pub functions_per_unit: (usize, usize),
    /// Conditional members per Fig. 6-style initializer, inclusive range.
    pub init_members: (usize, usize),
    /// Fraction of units containing a computed include (rare in Linux).
    pub computed_include_pct: u32,
    /// Fraction of units with an `#error` in some conditional branch.
    pub error_directive_pct: u32,
    /// Generate names that are typedefs only under some configurations
    /// (ambiguously-defined names; Linux has none, Table 3).
    pub ambiguous_typedefs: bool,
    /// Depth of the shared `include/deep/` header tree (`0` = none).
    ///
    /// Real kernel headers form deep include chains (`module.h` pulls
    /// dozens of transitive headers); this models that skew: every
    /// subsystem header includes a deep-tree root, so every unit drags
    /// the whole chain and the shared preprocessing cache has something
    /// process-wide to amortize.
    pub header_depth: usize,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            units: 48,
            seed: 0x5C1A_2012,
            subsystem_headers: 24,
            config_vars: 48,
            functions_per_unit: (3, 10),
            init_members: (4, 18),
            computed_include_pct: 20,
            error_directive_pct: 15,
            ambiguous_typedefs: false,
            header_depth: 4,
        }
    }
}

impl CorpusSpec {
    /// The *constrained* corpus: reduced variability, mirroring the
    /// paper's "constrained kernel" — the only setup TypeChef (here: the
    /// SAT condition backend) completes in reasonable time (§6.3).
    /// SuperC's BDD backend runs on both.
    pub fn constrained() -> Self {
        CorpusSpec {
            init_members: (2, 6),
            functions_per_unit: (2, 5),
            computed_include_pct: 10,
            error_directive_pct: 10,
            ..CorpusSpec::default()
        }
    }

    /// A small corpus for tests.
    pub fn small() -> Self {
        CorpusSpec {
            units: 6,
            subsystem_headers: 6,
            config_vars: 12,
            functions_per_unit: (2, 4),
            init_members: (3, 8),
            header_depth: 2,
            ..CorpusSpec::default()
        }
    }

    /// A kernel-shaped corpus: many units over a wide subsystem-header
    /// pool and a deep shared header tree — the shape the parallel
    /// corpus driver and `bench_snapshot`'s `kernel` workload are built
    /// for. Scale the unit count with `units(n)` as needed.
    pub fn kernel() -> Self {
        CorpusSpec {
            units: 1024,
            subsystem_headers: 64,
            config_vars: 96,
            header_depth: 8,
            ..CorpusSpec::default()
        }
    }

    /// The same spec with a different unit count.
    pub fn units(self, n: usize) -> Self {
        CorpusSpec { units: n, ..self }
    }
}

/// A generated corpus: an in-memory file tree plus the compilation-unit
/// paths, in generation order.
#[derive(Clone, Debug)]
pub struct Corpus {
    /// All files (headers under `include/`, units under `src/`).
    pub fs: MemFs,
    /// Compilation-unit paths.
    pub units: Vec<String>,
    /// The spec that produced this corpus.
    pub spec: CorpusSpec,
}

impl Corpus {
    /// Writes the corpus to a directory tree on disk (for inspection or
    /// the CLI).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<()> {
        for (path, contents) in self.fs.iter() {
            let full = dir.join(path);
            if let Some(parent) = full.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(full, contents)?;
        }
        Ok(())
    }

    /// Total source bytes in the corpus.
    pub fn total_bytes(&self) -> usize {
        self.fs.iter().map(|(_, c)| c.len()).sum()
    }
}

struct Gen {
    rng: SmallRng,
    spec: CorpusSpec,
    configs: Vec<String>,
}

/// Generates a corpus from the spec.
pub fn generate(spec: &CorpusSpec) -> Corpus {
    let mut g = Gen {
        rng: SmallRng::seed_from_u64(spec.seed),
        spec: spec.clone(),
        configs: (0..spec.config_vars.max(4))
            .map(|i| {
                let base = CONFIG_NAMES[i % CONFIG_NAMES.len()];
                if i >= CONFIG_NAMES.len() {
                    format!("CONFIG_{base}_{}", i / CONFIG_NAMES.len())
                } else {
                    format!("CONFIG_{base}")
                }
            })
            .collect(),
    };
    let mut fs = MemFs::new();
    fixed_headers(&mut fs);
    // The deep tree is index-deterministic (no RNG draws), so adding or
    // removing it never shifts the random stream behind the rest of the
    // corpus: the same seed yields the same units at any depth.
    for (path, text) in deep_headers(&g.spec, &g.configs) {
        fs.add(&path, &text);
    }
    for h in 0..spec.subsystem_headers {
        let (path, text) = g.subsystem_header(h);
        fs.add(&path, &text);
    }
    let mut units = Vec::with_capacity(spec.units);
    for u in 0..spec.units {
        let path = format!("src/unit{u}.c");
        let text = g.unit(u);
        fs.add(&path, &text);
        units.push(path);
    }
    Corpus {
        fs,
        units,
        spec: spec.clone(),
    }
}

const CONFIG_NAMES: &[&str] = &[
    "SMP",
    "PM",
    "NUMA",
    "64BIT",
    "DEBUG_KERNEL",
    "PREEMPT",
    "HOTPLUG",
    "TRACE",
    "MODULES",
    "NET",
    "BLOCK",
    "PCI",
    "ACPI",
    "USB",
    "INPUT_MOUSEDEV_PSAUX",
    "HIGHMEM",
    "SWAP",
    "SYSFS",
    "PROC_FS",
    "EPOLL",
    "FUTEX",
    "AIO",
    "KALLSYMS",
    "SECCOMP",
];

impl Gen {
    fn config(&mut self) -> String {
        let i = self.rng.gen_range(0..self.configs.len());
        self.configs[i].clone()
    }

    fn pct(&mut self, p: u32) -> bool {
        self.rng.gen_range(0..100) < p as usize
    }

    fn subsystem_header(&mut self, n: usize) -> (String, String) {
        let mut s = String::new();
        let guard = format!("_SUB{n}_H");
        let cfg = self.config();
        let cfg2 = self.config();
        let _ = writeln!(s, "#ifndef {guard}");
        let _ = writeln!(s, "#define {guard}");
        let _ = writeln!(s, "#include <linux/types.h>");
        if self.spec.header_depth > 0 {
            // Every subsystem header roots into the shared deep tree, so
            // every unit drags the whole chain (the module.h skew of
            // Table 2b, at depth).
            let _ = writeln!(s, "#include <deep/d0_{}.h>", n % DEEP_WIDTH);
        }
        let _ = writeln!(s, "#define SUB{n}_BASE {}", 0x100 * (n + 1));
        // A multiply-defined macro (Fig. 2 shape).
        let _ = writeln!(s, "#ifdef {cfg}");
        let _ = writeln!(s, "#define SUB{n}_FLAGS 3");
        let _ = writeln!(s, "#else");
        let _ = writeln!(s, "#define SUB{n}_FLAGS 1");
        let _ = writeln!(s, "#endif");
        // A function-like macro nesting another macro.
        let _ = writeln!(
            s,
            "#define sub{n}_adjust(x) (((x) + SUB{n}_FLAGS) & ~SUB{n}_FLAGS)"
        );
        // A struct with a conditional member.
        let _ = writeln!(s, "struct sub{n}_dev {{");
        let _ = writeln!(s, "  int id;");
        let _ = writeln!(s, "#ifdef {cfg2}");
        let _ = writeln!(s, "  int power_state;");
        let _ = writeln!(s, "#endif");
        let _ = writeln!(s, "  void *priv;");
        let _ = writeln!(s, "}};");
        // A typedef and externs.
        let _ = writeln!(s, "typedef struct sub{n}_dev sub{n}_t;");
        let _ = writeln!(s, "extern int sub{n}_probe(sub{n}_t *dev);");
        let _ = writeln!(s, "extern void sub{n}_remove(sub{n}_t *dev);");
        // Conditional enum members (trailing-comma items, like configs
        // adding members).
        let _ = writeln!(s, "enum sub{n}_state {{");
        let _ = writeln!(s, "  SUB{n}_IDLE,");
        let _ = writeln!(s, "#ifdef {cfg}");
        let _ = writeln!(s, "  SUB{n}_SUSPENDED,");
        let _ = writeln!(s, "#endif");
        let _ = writeln!(s, "  SUB{n}_ACTIVE");
        let _ = writeln!(s, "}};");
        if self.spec.ambiguous_typedefs && n.is_multiple_of(5) {
            let acfg = self.config();
            let _ = writeln!(s, "#ifdef {acfg}");
            let _ = writeln!(s, "typedef int amb{n}_t;");
            let _ = writeln!(s, "#endif");
        }
        let _ = writeln!(s, "#endif");
        (format!("include/sub/sub{n}.h"), s)
    }

    fn unit(&mut self, u: usize) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "#include <linux/module.h>");
        let _ = writeln!(s, "#include <linux/kernel.h>");
        // 1-4 subsystem headers.
        let nsub = self
            .rng
            .gen_range(1..=4.min(self.spec.subsystem_headers.max(1)));
        let mut subs: Vec<usize> = Vec::new();
        for _ in 0..nsub {
            let h = self.rng.gen_range(0..self.spec.subsystem_headers.max(1));
            if !subs.contains(&h) {
                subs.push(h);
            }
        }
        for &h in &subs {
            let _ = writeln!(s, "#include <sub/sub{h}.h>");
        }
        if self.pct(40) {
            let _ = writeln!(s, "#include <linux/list.h>");
        }
        if self.pct(30) {
            let _ = writeln!(s, "#include <asm/io.h>");
        }
        // A computed include (rare, Table 3); unit 0 always has one so
        // even tiny corpora exercise the feature.
        if (u == 0 || self.pct(self.spec.computed_include_pct)) && !subs.is_empty() {
            let h = subs[0];
            let _ = writeln!(s, "#define UNIT_EXTRA_HDR <sub/sub{h}.h>");
            let _ = writeln!(s, "#include UNIT_EXTRA_HDR");
        }
        let _ = writeln!(s, "MODULE_LICENSE(\"GPL\");");
        let _ = writeln!(s, "MODULE_AUTHOR(\"unit{u} generator\");");
        let _ = writeln!(s);

        // An #error confined to a conditional branch (its configurations
        // become infeasible).
        if u == 1 || self.pct(self.spec.error_directive_pct) {
            let _ = writeln!(s, "#ifdef CONFIG_BROKEN_UNIT{u}");
            let _ = writeln!(s, "#error unit{u} does not support this configuration");
            let _ = writeln!(s, "#endif");
        }

        // Module-level state, some conditional.
        let cfg = self.config();
        let _ = writeln!(s, "static int unit{u}_ready;");
        let _ = writeln!(s, "#ifdef {cfg}");
        let _ = writeln!(s, "static int unit{u}_fast_mode = 1;");
        let _ = writeln!(s, "#endif");
        let _ = writeln!(s);

        // The Fig. 6 initializer: conditional members.
        let members = self
            .rng
            .gen_range(self.spec.init_members.0..=self.spec.init_members.1);
        let _ = writeln!(s, "static int (*unit{u}_checks[])(void) = {{");
        for m in 0..members {
            let c = self.config();
            let _ = writeln!(s, "#ifdef {c}");
            let _ = writeln!(s, "  unit{u}_check_{m},");
            let _ = writeln!(s, "#endif");
        }
        let _ = writeln!(s, "  ((void *)0)");
        let _ = writeln!(s, "}};");
        let _ = writeln!(s);

        let nfun = self
            .rng
            .gen_range(self.spec.functions_per_unit.0..=self.spec.functions_per_unit.1);
        for f in 0..nfun {
            self.function(&mut s, u, f, &subs);
        }

        // An init function touching the generated state.
        let _ = writeln!(s, "static int unit{u}_init(void)");
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  unit{u}_ready = 1;");
        let _ = writeln!(s, "  pr_info(\"unit{u} ready\\n\");");
        let _ = writeln!(s, "  return 0;");
        let _ = writeln!(s, "}}");
        s
    }

    fn function(&mut self, s: &mut String, u: usize, f: usize, subs: &[usize]) {
        // Each unit's first function cycles the template kinds so even
        // tiny corpora cover every interaction pattern.
        let kind = if f == 0 {
            u % 6
        } else {
            self.rng.gen_range(0..6)
        };
        let name = format!("unit{u}_fn{f}");
        match kind {
            // Fig. 1: a conditional splitting an if-else statement.
            0 => {
                let cfg = self.config();
                let _ = writeln!(s, "static int {name}(int major, int minor)");
                let _ = writeln!(s, "{{");
                let _ = writeln!(s, "  int i;");
                let _ = writeln!(s, "#ifdef {cfg}");
                let _ = writeln!(s, "  if (major == 10)");
                let _ = writeln!(s, "    i = 31;");
                let _ = writeln!(s, "  else");
                let _ = writeln!(s, "#endif");
                let _ = writeln!(s, "  i = minor - 32;");
                let _ = writeln!(s, "  return i;");
                let _ = writeln!(s, "}}");
            }
            // Multiply-defined macros in expressions and #if (Fig. 2).
            1 => {
                let _ = writeln!(s, "static unsigned long {name}(unsigned long v)");
                let _ = writeln!(s, "{{");
                let _ = writeln!(s, "  unsigned long mask = (1UL << (BITS_PER_LONG - 1));");
                let _ = writeln!(s, "#if BITS_PER_LONG == 64");
                let _ = writeln!(s, "  v &= 0xffffffffUL;");
                let _ = writeln!(s, "#endif");
                let _ = writeln!(s, "  return v | mask;");
                let _ = writeln!(s, "}}");
            }
            // Cross-conditional function-like invocation (Figs. 3-4) and
            // variadic logging.
            2 => {
                let _ = writeln!(s, "static u32 {name}(u32 val, int n)");
                let _ = writeln!(s, "{{");
                let _ = writeln!(s, "  u32 wire = cpu_to_le32(val);");
                let _ = writeln!(s, "  pr_info(\"{name}: %d %d\\n\", wire, n);");
                let _ = writeln!(s, "  pr_info(\"{name} done\\n\");");
                let _ = writeln!(s, "  return wire;");
                let _ = writeln!(s, "}}");
            }
            // Token pasting + stringification (Fig. 5 flavor).
            3 => {
                let _ = writeln!(s, "#define {name}_glue(a, b) a ## b");
                let _ = writeln!(s, "static const char *{name}(void)");
                let _ = writeln!(s, "{{");
                let _ = writeln!(s, "  int {name}_glue(tmp, {f}) = {f};");
                let _ = writeln!(s, "  (void){name}_glue(tmp, {f});");
                let _ = writeln!(s, "  return __stringify(SUB_LEVEL_{f});");
                let _ = writeln!(s, "}}");
            }
            // Non-boolean conditional expressions + nested conditionals.
            4 => {
                let cfg = self.config();
                let _ = writeln!(s, "static int {name}(int cpu)");
                let _ = writeln!(s, "{{");
                let _ = writeln!(s, "  int n = 0;");
                let _ = writeln!(s, "#if NR_CPUS < 256");
                let _ = writeln!(s, "  n = cpu & 0xff;");
                let _ = writeln!(s, "#ifdef {cfg}");
                let _ = writeln!(s, "  n = sub_cpu_map(n);");
                let _ = writeln!(s, "#endif");
                let _ = writeln!(s, "#else");
                let _ = writeln!(s, "  n = cpu;");
                let _ = writeln!(s, "#endif");
                let _ = writeln!(s, "  switch (n) {{");
                let _ = writeln!(s, "  case 0: return -1;");
                let _ = writeln!(s, "  case 1 ... 7: return 1;");
                let _ = writeln!(s, "  default: return n;");
                let _ = writeln!(s, "  }}");
                let _ = writeln!(s, "}}");
            }
            // Subsystem types, min/container_of-style macros, loops.
            _ => {
                let h = subs.first().copied().unwrap_or(0);
                let _ = writeln!(s, "static int {name}(struct sub{h}_dev *dev, int budget)");
                let _ = writeln!(s, "{{");
                let _ = writeln!(s, "  sub{h}_t *typed = dev;");
                let _ = writeln!(s, "  int quota = min(budget, SUB{h}_BASE);");
                let _ = writeln!(s, "  int done = 0;");
                let _ = writeln!(s, "  while (done < quota) {{");
                let _ = writeln!(s, "    done += sub{h}_adjust(done + 1);");
                let _ = writeln!(s, "    if (unlikely(done < 0))");
                let _ = writeln!(s, "      break;");
                let _ = writeln!(s, "  }}");
                let _ = writeln!(s, "  return sub{h}_probe(typed) + done;");
                let _ = writeln!(s, "}}");
            }
        }
        let _ = writeln!(s);
    }
}

/// Parallel chains in the deep header tree. Two is enough to give
/// subsystem headers distinct roots while keeping the file count
/// dominated by depth.
const DEEP_WIDTH: usize = 2;

/// The shared deep header tree: `DEEP_WIDTH` chains of
/// [`CorpusSpec::header_depth`] guarded headers under `include/deep/`,
/// each level including the next (with a cross-link so the chains
/// converge and the include guards actually fire). Contents are a pure
/// function of `(level, chain)` — no RNG draws — with conditional macro
/// definitions so depth adds presence-condition work, not just lexing.
fn deep_headers(spec: &CorpusSpec, configs: &[String]) -> Vec<(String, String)> {
    let depth = spec.header_depth;
    let mut out = Vec::new();
    for l in 0..depth {
        for k in 0..DEEP_WIDTH {
            let mut s = String::new();
            let guard = format!("_DEEP{l}_{k}_H");
            let _ = writeln!(s, "#ifndef {guard}");
            let _ = writeln!(s, "#define {guard}");
            let _ = writeln!(s, "#include <linux/types.h>");
            if l + 1 < depth {
                let _ = writeln!(s, "#include <deep/d{}_{k}.h>", l + 1);
                if k == 1 {
                    let _ = writeln!(s, "#include <deep/d{}_0.h>", l + 1);
                }
            }
            let cfg = &configs[(l * DEEP_WIDTH + k) % configs.len()];
            let _ = writeln!(s, "#define DEEP{l}_{k}_SHIFT {}", (l + k) % 24);
            let _ = writeln!(s, "#ifdef {cfg}");
            let _ = writeln!(s, "#define DEEP{l}_{k}_CAP 64");
            let _ = writeln!(s, "#else");
            let _ = writeln!(s, "#define DEEP{l}_{k}_CAP 16");
            let _ = writeln!(s, "#endif");
            let _ = writeln!(s, "typedef u32 deep{l}_{k}_t;");
            let _ = writeln!(s, "static inline u32 deep{l}_{k}_mix(u32 v)");
            let _ = writeln!(s, "{{");
            let _ = writeln!(
                s,
                "  return (v << DEEP{l}_{k}_SHIFT) ^ (u32)DEEP{l}_{k}_CAP;"
            );
            let _ = writeln!(s, "}}");
            let _ = writeln!(s, "#endif");
            out.push((format!("include/deep/d{l}_{k}.h"), s));
        }
    }
    out
}

fn fixed_headers(fs: &mut MemFs) {
    fs.add(
        "include/linux/types.h",
        "#ifndef _LINUX_TYPES_H\n\
         #define _LINUX_TYPES_H\n\
         typedef unsigned char u8;\n\
         typedef unsigned short u16;\n\
         typedef unsigned int u32;\n\
         typedef unsigned long long u64;\n\
         typedef signed char s8;\n\
         typedef short s16;\n\
         typedef int s32;\n\
         typedef long long s64;\n\
         typedef unsigned long size_t;\n\
         typedef int bool_t;\n\
         struct list_head { struct list_head *next, *prev; };\n\
         #endif\n",
    );
    fs.add(
        "include/generated/bitsperlong.h",
        "#ifndef _BITSPERLONG_H\n\
         #define _BITSPERLONG_H\n\
         #ifdef CONFIG_64BIT\n\
         #define BITS_PER_LONG 64\n\
         #else\n\
         #define BITS_PER_LONG 32\n\
         #endif\n\
         #endif\n",
    );
    fs.add(
        "include/linux/stringify.h",
        "#ifndef _LINUX_STRINGIFY_H\n\
         #define _LINUX_STRINGIFY_H\n\
         #define __stringify_1(x...) #x\n\
         #define __stringify(x...) __stringify_1(x)\n\
         #endif\n",
    );
    fs.add(
        "include/linux/kernel.h",
        "#ifndef _LINUX_KERNEL_H\n\
         #define _LINUX_KERNEL_H\n\
         #include <linux/types.h>\n\
         #include <generated/bitsperlong.h>\n\
         #include <linux/stringify.h>\n\
         #include <linux/byteorder.h>\n\
         #define PAGE_SIZE 4096\n\
         #ifdef CONFIG_HZ_1000\n\
         #define HZ 1000\n\
         #else\n\
         #define HZ 100\n\
         #endif\n\
         #define likely(x) (x)\n\
         #define unlikely(x) (x)\n\
         #define min(a, b) ((a) < (b) ? (a) : (b))\n\
         #define max(a, b) ((a) > (b) ? (a) : (b))\n\
         #define ARRAY_SIZE(a) (sizeof(a) / sizeof((a)[0]))\n\
         #define container_of(ptr, type, member) \\\n\
           ((type *)((char *)(ptr) - __builtin_offsetof(type, member)))\n\
         #define BUILD_BUG_ON(cond) ((void)sizeof(char[1 - 2 * !!(cond)]))\n\
         extern int printk(const char *fmt, ...);\n\
         #define pr_info(fmt, ...) printk(fmt , ## __VA_ARGS__)\n\
         #define pr_err(fmt, ...) printk(fmt , ## __VA_ARGS__)\n\
         extern int sub_cpu_map(int cpu);\n\
         #endif\n",
    );
    fs.add(
        "include/linux/byteorder.h",
        "#ifndef _LINUX_BYTEORDER_H\n\
         #define _LINUX_BYTEORDER_H\n\
         #include <linux/types.h>\n\
         #define __cpu_to_le32(x) ((u32)(x))\n\
         #define __cpu_to_le16(x) ((u16)(x))\n\
         #ifdef CONFIG_KERNEL_BYTEORDER\n\
         #define cpu_to_le32 __cpu_to_le32\n\
         #define cpu_to_le16 __cpu_to_le16\n\
         #endif\n\
         #endif\n",
    );
    fs.add(
        "include/linux/module.h",
        "#ifndef _LINUX_MODULE_H\n\
         #define _LINUX_MODULE_H\n\
         #include <linux/kernel.h>\n\
         #include <linux/types.h>\n\
         #define MODULE_LICENSE(l) static const char __mod_license[] = l;\n\
         #define MODULE_AUTHOR(a) static const char __mod_author[] = a;\n\
         #define EXPORT_SYMBOL(sym) extern typeof(sym) sym;\n\
         #endif\n",
    );
    fs.add(
        "include/linux/list.h",
        "#ifndef _LINUX_LIST_H\n\
         #define _LINUX_LIST_H\n\
         #include <linux/types.h>\n\
         #define LIST_HEAD_INIT(name) { &(name), &(name) }\n\
         #define list_entry(ptr, type, member) container_of(ptr, type, member)\n\
         static inline void INIT_LIST_HEAD(struct list_head *list)\n\
         {\n\
           list->next = list;\n\
           list->prev = list;\n\
         }\n\
         static inline int list_empty(const struct list_head *head)\n\
         {\n\
           return head->next == head;\n\
         }\n\
         #endif\n",
    );
    fs.add(
        "include/asm/io.h",
        "#ifndef _ASM_IO_H\n\
         #define _ASM_IO_H\n\
         #include <linux/types.h>\n\
         static inline void cpu_relax(void)\n\
         {\n\
           asm volatile(\"rep; nop\" : : : \"memory\");\n\
         }\n\
         static inline u32 readl(const volatile void *addr)\n\
         {\n\
           u32 ret;\n\
           asm volatile(\"movl %1, %0\" : \"=r\"(ret) : \"m\"(*(const volatile u32 *)addr));\n\
           return ret;\n\
         }\n\
         #endif\n",
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&CorpusSpec::small());
        let b = generate(&CorpusSpec::small());
        assert_eq!(a.units, b.units);
        for (p, c) in a.fs.iter() {
            assert_eq!(b.fs.read(p).as_deref(), Some(c), "{p} differs");
        }
        // A different seed changes content.
        let c = generate(&CorpusSpec {
            seed: 99,
            ..CorpusSpec::small()
        });
        let diff =
            a.fs.iter()
                .any(|(p, text)| c.fs.read(p).as_deref() != Some(text));
        assert!(diff);
    }

    #[test]
    fn corpus_has_expected_shape() {
        let spec = CorpusSpec::small();
        let corpus = generate(&spec);
        assert_eq!(corpus.units.len(), spec.units);
        assert!(corpus.fs.len() > spec.units + spec.subsystem_headers);
        assert!(corpus.total_bytes() > 1000);
        // Every unit includes module.h (the Table 2b skew).
        for u in &corpus.units {
            let text = corpus.fs.read(u).expect("unit exists");
            assert!(text.contains("#include <linux/module.h>"), "{u}");
            assert!(text.contains("unit"), "{u}");
        }
    }

    #[test]
    fn headers_are_guarded() {
        let corpus = generate(&CorpusSpec::small());
        for (p, text) in corpus.fs.iter() {
            if p.ends_with(".h") {
                assert!(text.starts_with("#ifndef"), "{p} lacks a guard");
            }
        }
    }

    #[test]
    fn deep_tree_reaches_requested_depth() {
        let spec = CorpusSpec {
            header_depth: 5,
            ..CorpusSpec::small()
        };
        let corpus = generate(&spec);
        for l in 0..spec.header_depth {
            for k in 0..DEEP_WIDTH {
                let p = format!("include/deep/d{l}_{k}.h");
                let text = corpus.fs.read(&p).unwrap_or_else(|| panic!("{p} missing"));
                if l + 1 < spec.header_depth {
                    assert!(
                        text.contains(&format!("#include <deep/d{}_{k}.h>", l + 1)),
                        "{p} does not chain deeper"
                    );
                }
            }
        }
        assert!(corpus.fs.read("include/deep/d5_0.h").is_none());
        // Subsystem headers root into the tree, so every unit drags it.
        let sub = corpus.fs.read("include/sub/sub0.h").expect("sub0.h");
        assert!(sub.contains("#include <deep/d0_0.h>"));
    }

    #[test]
    fn depth_does_not_shift_the_random_stream() {
        let shallow = generate(&CorpusSpec {
            header_depth: 0,
            ..CorpusSpec::small()
        });
        let deep = generate(&CorpusSpec {
            header_depth: 6,
            ..CorpusSpec::small()
        });
        // Units are RNG-driven; the index-deterministic deep tree must
        // not perturb them (only subsystem headers gain an include).
        for u in &shallow.units {
            assert_eq!(
                shallow.fs.read(u).as_deref(),
                deep.fs.read(u).as_deref(),
                "{u} differs across depths"
            );
        }
    }

    #[test]
    fn kernel_preset_is_kernel_shaped() {
        let spec = CorpusSpec::kernel().units(4);
        assert_eq!(spec.units, 4);
        assert!(spec.header_depth >= 8);
        assert!(spec.subsystem_headers >= 64);
        let corpus = generate(&spec);
        assert_eq!(corpus.units.len(), 4);
        assert!(corpus.fs.read("include/deep/d7_1.h").is_some());
    }
}
