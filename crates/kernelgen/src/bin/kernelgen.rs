//! Writes a synthetic Linux-like corpus to disk for inspection or use
//! with the `superc` CLI.
//!
//! ```text
//! kernelgen [--units N] [--seed S] [--headers N] [--depth N] [--constrained|--kernel] --out DIR
//! ```

use std::process::ExitCode;

use superc_kernelgen::{generate, CorpusSpec};

fn main() -> ExitCode {
    let mut spec = CorpusSpec::default();
    let mut out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let num = |it: &mut dyn Iterator<Item = String>| -> Option<usize> {
            it.next().and_then(|v| v.parse().ok())
        };
        match a.as_str() {
            "--units" => match num(&mut it) {
                Some(n) => spec.units = n,
                None => return usage("--units needs a number"),
            },
            "--seed" => match num(&mut it) {
                Some(n) => spec.seed = n as u64,
                None => return usage("--seed needs a number"),
            },
            "--headers" => match num(&mut it) {
                Some(n) => spec.subsystem_headers = n,
                None => return usage("--headers needs a number"),
            },
            "--depth" => match num(&mut it) {
                Some(n) => spec.header_depth = n,
                None => return usage("--depth needs a number"),
            },
            "--kernel" => {
                let units = spec.units;
                let seed = spec.seed;
                spec = CorpusSpec::kernel();
                spec.units = units;
                spec.seed = seed;
            }
            "--constrained" => {
                let units = spec.units;
                let seed = spec.seed;
                spec = CorpusSpec::constrained();
                spec.units = units;
                spec.seed = seed;
            }
            "--out" => out = it.next(),
            _ => return usage(&format!("unknown option {a}")),
        }
    }
    let Some(out) = out else {
        return usage("--out DIR is required");
    };
    let corpus = generate(&spec);
    if let Err(e) = corpus.write_to(std::path::Path::new(&out)) {
        eprintln!("writing corpus: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} files ({} units, {} bytes) to {out}",
        corpus.fs.len(),
        corpus.units.len(),
        corpus.total_bytes()
    );
    println!(
        "try: superc -I {out}/include {out}/{} --stats",
        corpus.units[0]
    );
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!("usage: kernelgen [--units N] [--seed S] [--headers N] [--depth N] [--constrained|--kernel] --out DIR");
    ExitCode::FAILURE
}
