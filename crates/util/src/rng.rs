//! A deterministic, dependency-free pseudo-random generator.
//!
//! Replaces the external `rand` crate (unavailable in the offline build)
//! for corpus generation and randomized tests. The core is xoshiro256**,
//! seeded through SplitMix64 — the same construction `rand`'s `SmallRng`
//! family uses — so quality is ample for generating synthetic kernels.
//! Streams are *not* bit-compatible with `rand`; corpus content changed
//! once at the swap, deterministically.
//!
//! The API mirrors the subset of `rand` the workspace used
//! (`seed_from_u64`, `gen_range` over `a..b` / `a..=b`, `gen_bool`) so
//! call sites read the same.

use std::ops::{Range, RangeInclusive};

/// A small, fast, seedable RNG (xoshiro256**).
///
/// # Examples
///
/// ```
/// use superc_util::SmallRng;
/// let mut a = SmallRng::seed_from_u64(42);
/// let mut b = SmallRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range(0..10);
/// assert!(x < 10);
/// ```
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// An unbiased integer below `n` (Lemire's multiply-shift rejection).
    #[inline]
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "empty range");
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (n as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= n || lo >= n.wrapping_neg() % n {
                return hi;
            }
        }
    }

    /// A uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> usize {
        let (lo, hi_incl) = range.bounds();
        assert!(lo <= hi_incl, "gen_range called with an empty range");
        let span = (hi_incl - lo) as u64 + 1;
        lo + self.below(span) as usize
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 random bits give a uniform in [0, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

/// Integer ranges accepted by [`SmallRng::gen_range`].
pub trait SampleRange {
    /// `(low, high_inclusive)`.
    fn bounds(&self) -> (usize, usize);
}

impl SampleRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty range");
        (self.start, self.end - 1)
    }
}

impl SampleRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.gen_range(0..10);
            seen[x] = true;
            let y = r.gen_range(3..=5);
            assert!((3..=5).contains(&y));
        }
        assert!(seen.iter().all(|&s| s), "all of 0..10 hit in 1000 draws");
        assert_eq!(r.gen_range(4..=4), 4);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let heads = (0..2000).filter(|_| r.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "{heads} heads of 2000");
    }
}
