//! A miniature JSON reader for the daemon's NDJSON request protocol.
//!
//! The build environment is offline (no `serde`), and the daemon only
//! needs to *read* small request objects — responses are rendered with
//! the same hand-written escaping the lint formats use
//! (`superc_analyze::render`). This is a strict recursive-descent
//! parser over the full JSON grammar: objects, arrays, strings with
//! `\uXXXX` escapes (surrogate pairs included), numbers, and the three
//! literals. Object keys keep insertion order; duplicate keys keep the
//! last value on lookup (like every mainstream parser).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (the daemon only uses small integers).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the problem.
    ///
    /// # Examples
    ///
    /// ```
    /// use superc_util::json::Json;
    /// let v = Json::parse(r#"{"cmd":"parse","units":["a.c"]}"#).unwrap();
    /// assert_eq!(v.get("cmd").and_then(Json::as_str), Some("parse"));
    /// ```
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (last duplicate wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, for `Json::Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, for `Json::Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, for `Json::Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, for `Json::Arr`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must
                                // follow with the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(format!(
                                            "bad low surrogate at byte {}",
                                            self.pos
                                        ));
                                    }
                                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(format!("bad \\u escape at byte {}", self.pos)),
                            }
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // Copy a maximal run of plain (possibly multi-byte
                    // UTF-8) content in one slice.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let s = std::str::from_utf8(chunk).map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape: {s}"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{s}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_daemon_request_shapes() {
        let v = Json::parse(r#"{"cmd":"lint","units":["a.c","b.c"],"format":"json"}"#).unwrap();
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("lint"));
        let units: Vec<&str> = v
            .get("units")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter_map(Json::as_str)
            .collect();
        assert_eq!(units, ["a.c", "b.c"]);
        assert_eq!(v.get("format").and_then(Json::as_str), Some("json"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_scalars_numbers_and_nesting() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e1").unwrap(), Json::Num(-125.0));
        let v = Json::parse(r#"[{"k":[1,2]},3]"#).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 2);
        assert_eq!(
            v.as_array().unwrap()[0]
                .get("k")
                .unwrap()
                .as_array()
                .unwrap()[1],
            Json::Num(2.0)
        );
    }

    #[test]
    fn unescapes_strings_including_surrogate_pairs() {
        let v = Json::parse(r#""a\n\t\"\\\u0041\ud83d\ude00b""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\A\u{1F600}b"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
            "\"\\ud800x\"",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn duplicate_keys_keep_the_last_value() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(2.0));
    }
}
