//! A shared string interner producing `u32` [`Symbol`]s.
//!
//! Macro names and configuration-variable names recur constantly — every
//! identifier token probes the macro table, and every `defined(M)` probes
//! the BDD variable table. Interning makes each distinct spelling hash
//! exactly once; afterwards lookups key on a `u32` and equality is an
//! integer compare. One interner is shared per pipeline (the `CondCtx`
//! owns it and the preprocessor and BDD manager borrow it), so a `Symbol`
//! means the same string everywhere in a run.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::hash::FastMap;

/// An interned string: a dense index into the owning [`Interner`].
///
/// Symbols from different interners must not be mixed; within one
/// pipeline there is one interner, so this does not arise in practice.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

#[derive(Default)]
struct Inner {
    map: FastMap<Rc<str>, Symbol>,
    strings: Vec<Rc<str>>,
}

/// A cheap-to-clone handle to a shared intern table.
///
/// # Examples
///
/// ```
/// use superc_util::Interner;
/// let interner = Interner::new();
/// let a = interner.intern("CONFIG_SMP");
/// let b = interner.intern("CONFIG_SMP");
/// assert_eq!(a, b);
/// assert_eq!(&*interner.resolve(a), "CONFIG_SMP");
/// ```
#[derive(Clone, Default)]
pub struct Interner {
    inner: Rc<RefCell<Inner>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol (allocating on first sight).
    pub fn intern(&self, s: &str) -> Symbol {
        let mut inner = self.inner.borrow_mut();
        if let Some(&sym) = inner.map.get(s) {
            return sym;
        }
        let rc: Rc<str> = Rc::from(s);
        let sym = Symbol(inner.strings.len() as u32);
        inner.strings.push(rc.clone());
        inner.map.insert(rc, sym);
        sym
    }

    /// Interns an already-shared string without copying its bytes when it
    /// is new (token texts are `Rc<str>` throughout the lexer).
    pub fn intern_rc(&self, s: &Rc<str>) -> Symbol {
        let mut inner = self.inner.borrow_mut();
        if let Some(&sym) = inner.map.get(&**s) {
            return sym;
        }
        let sym = Symbol(inner.strings.len() as u32);
        inner.strings.push(s.clone());
        inner.map.insert(s.clone(), sym);
        sym
    }

    /// The symbol for `s` if it has been interned.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.inner.borrow().map.get(s).copied()
    }

    /// The string behind `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` came from a different interner (index out of range).
    pub fn resolve(&self, sym: Symbol) -> Rc<str> {
        self.inner.borrow().strings[sym.index()].clone()
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.inner.borrow().strings.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `other` is the same underlying table.
    pub fn same_as(&self, other: &Interner) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Interner({} strings)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_eq!(a, Symbol(0));
        assert_eq!(b, Symbol(1));
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(&*i.resolve(b), "beta");
    }

    #[test]
    fn intern_rc_shares_storage() {
        let i = Interner::new();
        let s: Rc<str> = Rc::from("gamma");
        let sym = i.intern_rc(&s);
        assert!(Rc::ptr_eq(&i.resolve(sym), &s));
        assert_eq!(i.get("gamma"), Some(sym));
        assert_eq!(i.get("delta"), None);
    }

    #[test]
    fn clones_share_the_table() {
        let i = Interner::new();
        let j = i.clone();
        let a = i.intern("x");
        assert_eq!(j.get("x"), Some(a));
        assert!(i.same_as(&j));
        assert!(!i.same_as(&Interner::new()));
    }
}
