//! An FxHash-style hasher and map/set aliases for hot-path tables.
//!
//! The algorithm is the multiply-xor mix used by rustc's `FxHasher`
//! (itself derived from Firefox's hash): each word of input is folded in
//! with a rotate, xor, and multiply by a large odd constant. It is not
//! DoS-resistant — fine here, since every key we hash (BDD nodes, symbol
//! ids, LR states) is program-generated, never attacker-chosen.
//!
//! Measured against SipHash-1-3 on this workspace's BDD workload, the
//! unique-table and apply-cache probes are the dominant per-token cost;
//! see `DESIGN.md` ("Performance notes") for the end-to-end numbers.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FastSet<K> = HashSet<K, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`]; the default state is deterministic, so
/// iteration order of a [`FastMap`] is stable run to run.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc-style Fx hasher: one rotate-xor-multiply per input word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" and "ab\0" cannot collide trivially.
            self.add_to_hash(u64::from_le_bytes(word) ^ (rest.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // One final mix so low-entropy states (e.g. a single small u32
        // write) still spread across the table's bucket-index bits.
        let h = self.hash;
        h ^ (h >> 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&(1u32, 2u32, 3u32)), hash_of(&(1u32, 2u32, 3u32)));
        assert_eq!(hash_of(&"BITS_PER_LONG"), hash_of(&"BITS_PER_LONG"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
        assert_ne!(hash_of(&"CONFIG_SMP"), hash_of(&"CONFIG_PM"));
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FastMap<(u8, u32, u32), u32> = FastMap::default();
        for i in 0..1000u32 {
            m.insert((0, i, i + 1), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(0, 500, 501)), Some(&500));

        let mut s: FastSet<u32> = FastSet::default();
        s.insert(7);
        assert!(s.contains(&7) && !s.contains(&8));
    }

    #[test]
    fn low_entropy_u32_keys_spread() {
        // Small sequential u32 keys (BDD node ids) must not collapse into
        // the same low bits — that is what the finish() fold guards.
        let mut low_bits: FastSet<u64> = FastSet::default();
        for i in 0..256u32 {
            low_bits.insert(hash_of(&i) & 0xff);
        }
        assert!(
            low_bits.len() > 128,
            "only {} distinct low bytes",
            low_bits.len()
        );
    }
}
