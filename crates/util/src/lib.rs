//! Dependency-free utilities shared across the SuperC reproduction.
//!
//! The build environment is offline, so everything external the workspace
//! used to lean on lives here instead, tuned for the hot paths the paper's
//! feasibility argument depends on (PLDI 2012 §4):
//!
//! * [`hash`] — an FxHash-style multiply-rotate hasher and the
//!   [`FastMap`]/[`FastSet`] aliases used by the BDD unique table, the
//!   apply caches, and the FMLR merge index. SipHash (std's default) costs
//!   a long dependency chain per small key; presence-condition keys are
//!   3-field structs and `u32` pairs, exactly the shape Fx excels at.
//! * [`intern`] — a [`Symbol`](intern::Symbol)-based string interner so
//!   macro and configuration-variable names hash once, ever.
//! * [`rng`] — a deterministic xoshiro256** generator replacing the
//!   external `rand` crate for corpus generation.
//! * [`prop`] — a miniature property-test harness replacing `proptest`
//!   for the workspace's randomized tests.
//! * [`json`] — a strict little JSON reader for the parse daemon's
//!   NDJSON request protocol (responses are hand-rendered).

pub mod hash;
pub mod intern;
pub mod json;
pub mod prop;
pub mod rng;

pub use hash::{FastMap, FastSet, FxBuildHasher, FxHasher};
pub use intern::{Interner, Symbol};
pub use rng::SmallRng;
