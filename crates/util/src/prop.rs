//! A miniature property-test harness (offline `proptest` replacement).
//!
//! A property is a closure over a [`Gen`]; [`check`] runs it for a fixed
//! number of seeded cases and, when a case panics, reports the case's
//! seed before propagating the panic so the failure can be replayed with
//! `SUPERC_PROP_SEED`. There is no shrinking — cases are kept small by
//! construction instead (bounded depths and lengths in the generators).
//!
//! Environment knobs:
//! * `SUPERC_PROP_CASES` — override the case count (e.g. `1000` for a
//!   soak run).
//! * `SUPERC_PROP_SEED` — run exactly one case with the given seed.
//!
//! # Examples
//!
//! ```
//! use superc_util::prop::{check, Gen};
//! check("addition_commutes", 64, |g: &mut Gen| {
//!     let (a, b) = (g.usize(0..1000), g.usize(0..1000));
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::{SampleRange, SmallRng};

/// A source of structured random values for one property case.
pub struct Gen {
    rng: SmallRng,
}

impl Gen {
    /// A generator for the given case seed (for replaying by hand).
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A uniform `usize` from the range (`a..b` or `a..=b`).
    pub fn usize<R: SampleRange>(&mut self, range: R) -> usize {
        self.rng.gen_range(range)
    }

    /// A uniform `u8` from the range.
    pub fn u8<R: SampleRange>(&mut self, range: R) -> u8 {
        self.rng.gen_range(range) as u8
    }

    /// A uniform `u32` from the range.
    pub fn u32<R: SampleRange>(&mut self, range: R) -> u32 {
        self.rng.gen_range(range) as u32
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// True with probability `pct`/100.
    pub fn percent(&mut self, pct: u32) -> bool {
        self.usize(0..100) < pct as usize
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize(0..items.len())]
    }

    /// A vector with a length drawn from `len`, filled by `f`.
    pub fn vec<T, R: SampleRange>(&mut self, len: R, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.usize(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// A string of length drawn from `len` over the given alphabet.
    pub fn string<R: SampleRange>(&mut self, alphabet: &str, len: R) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        let n = self.usize(len);
        (0..n).map(|_| *self.choose(&chars)).collect()
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

/// Base seed for a named property: stable across runs and machines.
fn base_seed(name: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = crate::hash::FxHasher::default();
    name.hash(&mut h);
    h.finish() | 1
}

/// The one-line shell command that replays a failing case locally.
///
/// Property names double as their test function names, so the failing
/// seed plus the name is a complete reproduction recipe — CI logs can be
/// pasted straight into a terminal.
pub fn repro_command(name: &str, seed: u64) -> String {
    format!("SUPERC_PROP_SEED={seed} cargo test -q {name}")
}

/// Runs `property` for `cases` seeded cases, reporting the failing seed.
///
/// # Panics
///
/// Re-raises the property's panic after printing the case seed and a
/// one-line repro command (see [`repro_command`]).
pub fn check(name: &str, cases: usize, mut property: impl FnMut(&mut Gen)) {
    if let Some(seed) = env_u64("SUPERC_PROP_SEED") {
        let mut g = Gen::from_seed(seed);
        property(&mut g);
        return;
    }
    let cases = env_u64("SUPERC_PROP_CASES")
        .map(|n| n as usize)
        .unwrap_or(cases);
    let base = base_seed(name);
    for case in 0..cases {
        let seed = base
            .wrapping_add(case as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut g = Gen::from_seed(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut g)));
        if let Err(payload) = outcome {
            eprintln!(
                "property `{name}` failed on case {case}/{cases} with seed {seed}\n  \
                 repro: {}",
                repro_command(name, seed)
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_quietly() {
        check("tautology", 32, |g| {
            let x = g.usize(0..10);
            assert!(x < 10);
        });
    }

    #[test]
    fn reports_failures() {
        let failed = catch_unwind(AssertUnwindSafe(|| {
            check("always_fails", 8, |g| {
                let x = g.usize(0..10);
                assert!(x > 100, "x = {x}");
            })
        }));
        assert!(failed.is_err());
    }

    #[test]
    fn repro_command_is_a_complete_recipe() {
        let cmd = repro_command("soup_matches_single_config", 42);
        assert_eq!(
            cmd,
            "SUPERC_PROP_SEED=42 cargo test -q soup_matches_single_config"
        );
        // Setting SUPERC_PROP_SEED here would race with the other prop
        // tests in this crate (env vars are process-global), so the
        // replay path itself is covered by `check`'s env handling above.
    }

    #[test]
    fn named_streams_are_deterministic() {
        let mut first = Vec::new();
        check("stream", 4, |g| first.push(g.usize(0..1_000_000)));
        let mut second = Vec::new();
        check("stream", 4, |g| second.push(g.usize(0..1_000_000)));
        assert_eq!(first, second);
        assert!(first.iter().collect::<std::collections::HashSet<_>>().len() > 1);
    }
}
