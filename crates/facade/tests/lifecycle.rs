//! Driver lifecycle: the facade's embedding contract.
//!
//! * Resolver failures surface on the last-error channel — never a
//!   panic across the service boundary.
//! * Edit generations batch edits; committing one invalidates exactly
//!   the units whose include closure saw the edit.
//! * Misuse (requests mid-generation, edits outside one) is rejected
//!   with an error, also mirrored on the last-error channel.
//! * Drivers drop cleanly at every lifecycle stage (pooled workers
//!   join; nothing hangs or unwinds).
//! * Rendered requests are byte-identical to the one-shot CLI renderers
//!   over the same tree.

use superc::analyze::LintOptions;
use superc::cli::{self, LintFormat};
use superc::corpus::{process_corpus, Capture, CorpusOptions};
use superc::MemFs;
use superc_facade::{Driver, Options};

fn options() -> Options {
    let mut options = Options::default();
    options.pp.include_paths = vec!["include".to_string()];
    options
}

/// The warm-rerun fixture, staged through the driver's generation 1.
fn populated_driver(jobs: usize) -> Driver {
    let mut driver = Driver::new(options(), jobs);
    for (path, contents) in fixture_files() {
        driver
            .set_file(path, contents)
            .expect("generation 1 is open");
    }
    driver.end_generation().expect("commit generation 1");
    driver
}

fn fixture_files() -> Vec<(&'static str, &'static str)> {
    vec![
        ("include/leaf.h", "int leaf_decl(int);\n#define LEAF 1\n"),
        (
            "include/deep.h",
            "#include \"deeper.h\"\nint deep_decl(void);\n",
        ),
        (
            "include/deeper.h",
            "#ifdef CONFIG_SMP\n#define WIDTH 8\n#else\n#define WIDTH 1\n#endif\n",
        ),
        (
            "a.c",
            "#include <leaf.h>\n#include <deep.h>\nint a_fn(void) { return LEAF + WIDTH; }\n",
        ),
        (
            "b.c",
            "#include <deep.h>\nint b_fn(void) { return WIDTH; }\n",
        ),
        (
            "c.c",
            "#include <deep.h>\nint c_fn(void) { return WIDTH * 2; }\n",
        ),
    ]
}

fn units() -> Vec<String> {
    vec!["a.c".to_string(), "b.c".to_string(), "c.c".to_string()]
}

#[test]
fn resolver_errors_land_on_the_last_error_channel_not_a_panic() {
    let mut driver = Driver::new(options(), 2);
    driver.set_resolver(Box::new(|path| {
        if path.contains("flaky") {
            Err("backing store unreachable".to_string())
        } else {
            Ok(None)
        }
    }));
    driver
        .set_file("a.c", "#include <flaky.h>\nint a;\n")
        .expect("generation 1 is open");
    driver.end_generation().expect("commit");
    // The include probe hits the failing resolver: the unit degrades to
    // a missing-include diagnostic, the request still completes, and
    // the failure is recorded for the embedder.
    let report = driver
        .parse(&units()[..1].to_vec())
        .expect("parse completes");
    assert_eq!(report.parsed_units(), 1, "unit still parses");
    let err = driver.last_error().expect("resolver failure recorded");
    assert!(
        err.contains("resolver failed for") && err.contains("backing store unreachable"),
        "got: {err}"
    );
}

#[test]
fn resolver_serves_includes_the_overlay_does_not_have() {
    let mut driver = Driver::new(options(), 1);
    driver.set_resolver(Box::new(|path| {
        Ok((path == "include/virt.h").then(|| "#define VIRT 3\n".to_string()))
    }));
    driver
        .set_file("a.c", "#include <virt.h>\nint a = VIRT;\n")
        .expect("generation 1 is open");
    driver.end_generation().expect("commit");
    let report = driver.parse(&vec!["a.c".to_string()]).expect("parse");
    assert_eq!(report.parsed_units(), 1);
    assert!(report.units[0].fatal.is_none());
    assert!(driver.last_error().is_none(), "no failure to report");
}

#[test]
fn generation_commit_invalidates_exactly_the_affected_units() {
    let units = units();
    for jobs in [1usize, 2, 8] {
        let mut driver = populated_driver(jobs);
        let first = driver.parse(&units).expect("cold batch");
        assert_eq!(first.unit_memo_misses, 3, "jobs={jobs}: cold batch misses");

        // Edit the leaf header only a.c includes.
        driver.begin_generation().expect("open generation 2");
        driver
            .set_file("include/leaf.h", "int leaf_decl(int);\n#define LEAF 2\n")
            .expect("staged");
        let generation = driver.end_generation().expect("commit");
        assert_eq!(generation, 2);

        let second = driver.parse(&units).expect("warm batch");
        assert_eq!(second.unit_memo_hits, 2, "jobs={jobs}: b.c and c.c replay");
        assert_eq!(second.unit_memo_misses, 1, "jobs={jobs}: a.c recomputes");
        let hits: Vec<bool> = second.units.iter().map(|u| u.memo_hit).collect();
        assert_eq!(hits, [false, true, true], "jobs={jobs}");

        // remove_file is an edit too: deleting the deep chain's inner
        // header invalidates every unit (missing include ≠ stale replay).
        driver.begin_generation().expect("open generation 3");
        driver.remove_file("include/deeper.h").expect("staged");
        driver.end_generation().expect("commit");
        let third = driver.parse(&units).expect("warm batch");
        assert_eq!(third.unit_memo_hits, 0, "jobs={jobs}: all recompute");

        let stats = driver.stats();
        assert_eq!(stats.generation, 3);
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.unit_memo_misses, 3);
    }
}

#[test]
fn requests_and_edits_respect_the_generation_protocol() {
    let mut driver = populated_driver(2);
    let units = units();

    // Edits outside a generation are rejected.
    let err = driver
        .set_file("x.h", "int x;\n")
        .expect_err("no open generation");
    assert!(err.contains("requires an open generation"), "got: {err}");
    assert_eq!(driver.last_error().as_deref(), Some(err.as_str()));

    // Requests inside a generation are rejected (the tree is mid-edit).
    driver.begin_generation().expect("open");
    let err = driver.parse(&units).expect_err("mid-generation parse");
    assert!(err.contains("generation 2 is open"), "got: {err}");
    assert_eq!(driver.last_error().as_deref(), Some(err.as_str()));

    // Double-open and double-close are protocol errors, not panics.
    assert!(driver.begin_generation().is_err());
    driver.end_generation().expect("close");
    assert!(driver.end_generation().is_err());

    // After recovery the driver still serves requests.
    let report = driver.parse(&units).expect("healthy again");
    assert_eq!(report.parsed_units(), 3);
}

#[test]
fn drivers_drop_cleanly_at_every_lifecycle_stage() {
    // Fresh (generation 1 still open, workers idle).
    drop(Driver::new(options(), 4));
    // Populated but never parsed.
    drop(populated_driver(4));
    // After serving batches.
    let mut driver = populated_driver(4);
    driver.parse(&units()).expect("batch");
    driver.parse(&units()).expect("batch");
    drop(driver);
    // Mid-generation, with staged edits that never commit.
    let mut driver = populated_driver(4);
    driver.parse(&units()).expect("batch");
    driver.begin_generation().expect("open");
    driver
        .set_file("include/leaf.h", "int other;\n")
        .expect("staged");
    drop(driver);
}

#[test]
fn rendered_requests_match_the_one_shot_cli_renderers() {
    let mut driver = populated_driver(2);
    let units = units();
    let lopts = LintOptions::default();

    // The fresh one-shot reference: the same tree as a MemFs, run
    // through the cold corpus driver and the CLI's render functions.
    let mut reference_fs = MemFs::new();
    for (path, contents) in fixture_files() {
        reference_fs.add(path, contents);
    }
    let copts = CorpusOptions {
        lint: Some(lopts.clone()),
        ..CorpusOptions::default()
    };
    let reference = process_corpus(&reference_fs, &units, &options(), &copts);

    for format in [LintFormat::Text, LintFormat::Json, LintFormat::Sarif] {
        let want = cli::render_lint_report(&reference, format, false);
        let got = driver
            .lint_rendered(&units, format, &[], &lopts, false)
            .expect("lint request");
        assert_eq!(got, want, "{format:?} output must be CLI-byte-identical");
    }

    let copts = CorpusOptions {
        capture: Capture::default(),
        ..CorpusOptions::default()
    };
    let reference = process_corpus(&reference_fs, &units, &options(), &copts);
    let want = cli::render_corpus_report(&reference, false, false);
    let got = driver
        .parse_rendered(&units, false, false)
        .expect("parse request");
    assert_eq!(got, want, "parse output must be CLI-byte-identical");
}
