//! The embeddable facade over the SuperC reproduction: everything a
//! host process (an IDE, a build server, the C API, the `superc daemon`)
//! needs to run a **long-lived parse service**, re-exported behind one
//! small surface.
//!
//! The engine is [`Driver`] (implemented in `superc::service`, where
//! the `superc` binary can also reach it): one pooled corpus runner
//! whose shared preprocessing cache and unit result memo persist across
//! requests. A session alternates *edit generations* with requests:
//!
//! ```
//! use superc_facade::{Driver, LintFormat, Options};
//! use superc::analyze::LintOptions;
//!
//! let mut options = Options::default();
//! options.pp.include_paths = vec!["include".to_string()];
//! let mut driver = Driver::new(options, 2);
//!
//! // A fresh driver has generation 1 open: populate the tree.
//! driver.set_file("include/w.h", "#define W 1\n")?;
//! driver.set_file("a.c", "#include <w.h>\nint a = W;\n")?;
//! driver.end_generation()?;
//!
//! // Requests replay memoized units whose include closure (positive
//! // and negative dependencies) is untouched.
//! let units = vec!["a.c".to_string()];
//! let first = driver.parse(&units)?;
//! assert_eq!(first.parsed_units(), 1);
//!
//! // Edits are batched into explicit generations.
//! driver.begin_generation()?;
//! driver.set_file("include/w.h", "#define W 2\n")?;
//! driver.end_generation()?;
//! let second = driver.parse(&units)?;
//! assert!(!second.units[0].memo_hit); // the edit invalidated a.c
//!
//! // Rendered requests are byte-identical to the one-shot CLI.
//! let lint = driver.lint_rendered(
//!     &units, LintFormat::Json, &[], &LintOptions::default(), false)?;
//! assert!(lint.stdout.starts_with("{\"diagnostics\":"));
//! # Ok::<(), String>(())
//! ```
//!
//! Include resolution can be virtualized with
//! [`Driver::set_resolver`]: the callback serves file contents from
//! anywhere (editor buffers, archives, a build graph); failures land on
//! the driver's **last-error channel** ([`Driver::last_error`]) instead
//! of unwinding into the host. The same channel records misuse, such as
//! parsing while a generation is open.
//!
//! The C bindings in `superc-capi` wrap exactly this surface.

pub use superc::analyze::LintOptions;
pub use superc::cli::{LintFormat, Rendered};
pub use superc::service::{Driver, DriverFs, DriverStats, ResolverFn};
pub use superc::{Options, Profile};
