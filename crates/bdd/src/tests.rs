use super::*;
use superc_util::prop::{check, Gen};

fn mgr3() -> (BddManager, Bdd, Bdd, Bdd) {
    let m = BddManager::new();
    let a = m.var("A");
    let b = m.var("B");
    let c = m.var("C");
    (m, a, b, c)
}

#[test]
fn terminals_are_distinct_constants() {
    let m = BddManager::new();
    assert!(m.tru().is_true());
    assert!(m.fls().is_false());
    assert_ne!(m.tru(), m.fls());
    assert_eq!(m.constant(true), m.tru());
    assert_eq!(m.constant(false), m.fls());
}

#[test]
fn variables_are_interned_by_name() {
    let m = BddManager::new();
    assert_eq!(m.var("X"), m.var("X"));
    assert_ne!(m.var("X"), m.var("Y"));
    assert_eq!(m.num_vars(), 2);
    assert_eq!(m.var_name(m.var_id("X").unwrap()), "X");
    assert_eq!(m.var_id("Z"), None);
}

#[test]
fn basic_identities() {
    let (m, a, b, _) = mgr3();
    assert_eq!(a.and(&m.tru()), a);
    assert_eq!(a.and(&m.fls()), m.fls());
    assert_eq!(a.or(&m.fls()), a);
    assert_eq!(a.or(&m.tru()), m.tru());
    assert_eq!(a.and(&a), a);
    assert_eq!(a.or(&a), a);
    assert_eq!(a.xor(&a), m.fls());
    assert_eq!(a.and(&b), b.and(&a));
    assert_eq!(a.or(&b), b.or(&a));
}

#[test]
fn negation_involutes_and_excluded_middle() {
    let (m, a, _, _) = mgr3();
    assert_eq!(a.not().not(), a);
    assert!(a.or(&a.not()).is_true());
    assert!(a.and(&a.not()).is_false());
    assert_eq!(m.nvar("A"), a.not());
}

#[test]
fn implication_and_iff() {
    let (m, a, b, _) = mgr3();
    assert!(a.and(&b).implies_true(&a));
    assert!(!a.implies_true(&a.and(&b)));
    assert_eq!(a.iff(&a), m.tru());
    assert_eq!(a.iff(&a.not()), m.fls());
}

#[test]
fn feasibility_check() {
    let (_, a, b, _) = mgr3();
    assert!(a.feasible_with(&b));
    assert!(!a.feasible_with(&a.not()));
}

#[test]
fn canonicity_absorption() {
    // (A∧B) ∨ (A∧¬B) == A must hold as handle equality.
    let (_, a, b, _) = mgr3();
    let f = a.and(&b).or(&a.and(&b.not()));
    assert_eq!(f, a);
}

#[test]
fn restrict_cofactors() {
    let (m, a, b, _) = mgr3();
    let f = a.and(&b);
    let va = m.var_id("A").unwrap();
    assert_eq!(f.restrict(va, true), b);
    assert_eq!(f.restrict(va, false), m.fls());
    // Restricting a variable not in the support is the identity.
    let vc = m.var("C");
    let _ = vc;
    let c_id = m.var_id("C").unwrap();
    assert_eq!(f.restrict(c_id, true), f);
}

#[test]
fn support_lists_only_live_variables() {
    let (m, a, b, c) = mgr3();
    let f = a.and(&b).or(&a.and(&b.not())); // == A
    assert_eq!(f.support(), vec![m.var_id("A").unwrap()]);
    let g = a.xor(&c);
    assert_eq!(
        g.support(),
        vec![m.var_id("A").unwrap(), m.var_id("C").unwrap()]
    );
    assert!(b.manager().tru().support().is_empty());
}

#[test]
fn sat_count_matches_truth_table() {
    let (m, a, b, c) = mgr3();
    assert_eq!(m.tru().sat_count(), 8.0);
    assert_eq!(m.fls().sat_count(), 0.0);
    assert_eq!(a.sat_count(), 4.0);
    assert_eq!(a.and(&b).sat_count(), 2.0);
    assert_eq!(a.or(&b).sat_count(), 6.0);
    assert_eq!(a.and(&b).and(&c).sat_count(), 1.0);
    assert_eq!(a.xor(&b).sat_count(), 4.0);
}

#[test]
fn one_sat_produces_a_model() {
    let (m, a, b, _) = mgr3();
    let f = a.and(&b.not());
    let model = f.one_sat().expect("satisfiable");
    let env = |name: &str| {
        let id = m.var_id(name)?;
        model.iter().find(|&&(v, _)| v == id).map(|&(_, val)| val)
    };
    assert!(f.eval(env));
    assert_eq!(m.fls().one_sat(), None);
}

#[test]
fn eval_defaults_unknowns_to_false() {
    let (_, a, b, _) = mgr3();
    let f = a.or(&b);
    assert!(f.eval(|n| if n == "A" { Some(true) } else { None }));
    assert!(!f.eval(|_| None));
}

#[test]
fn display_is_never_empty() {
    let (m, a, b, _) = mgr3();
    assert_eq!(format!("{}", m.tru()), "1");
    assert_eq!(format!("{}", m.fls()), "0");
    assert!(!format!("{}", a.and(&b.not())).is_empty());
    assert!(format!("{:?}", a).starts_with("Bdd("));
}

#[test]
fn node_count_shares_subgraphs() {
    let (_, a, b, c) = mgr3();
    let f = a.xor(&b).xor(&c);
    assert!(f.node_count() >= 3);
    assert_eq!(a.node_count(), 1);
}

#[test]
fn stats_track_growth() {
    let m = BddManager::new();
    let s0 = m.stats();
    let a = m.var("A");
    let b = m.var("B");
    let _ = a.and(&b);
    let s1 = m.stats();
    assert!(s1.nodes > s0.nodes);
    assert_eq!(s1.variables, 2);
    assert!(s1.apply_calls >= 1);
    assert!(!format!("{m:?}").is_empty());
}

#[test]
fn managers_are_independent() {
    let m1 = BddManager::new();
    let m2 = BddManager::new();
    // Same name, different managers: not equal.
    assert_ne!(m1.var("X"), m2.var("X"));
}

/// A tiny expression language with a reference evaluator to check the BDD
/// operations against ground truth on all assignments of 4 variables.
#[derive(Clone, Debug)]
enum Expr {
    Var(u8),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn gen_expr(g: &mut Gen, depth: usize) -> Expr {
    if depth == 0 || g.percent(30) {
        return Expr::Var(g.u8(0..4));
    }
    match g.usize(0..4) {
        0 => Expr::Not(Box::new(gen_expr(g, depth - 1))),
        1 => Expr::And(
            Box::new(gen_expr(g, depth - 1)),
            Box::new(gen_expr(g, depth - 1)),
        ),
        2 => Expr::Or(
            Box::new(gen_expr(g, depth - 1)),
            Box::new(gen_expr(g, depth - 1)),
        ),
        _ => Expr::Xor(
            Box::new(gen_expr(g, depth - 1)),
            Box::new(gen_expr(g, depth - 1)),
        ),
    }
}

fn eval_expr(e: &Expr, env: u8) -> bool {
    match e {
        Expr::Var(i) => env & (1 << i) != 0,
        Expr::Not(a) => !eval_expr(a, env),
        Expr::And(a, b) => eval_expr(a, env) && eval_expr(b, env),
        Expr::Or(a, b) => eval_expr(a, env) || eval_expr(b, env),
        Expr::Xor(a, b) => eval_expr(a, env) != eval_expr(b, env),
    }
}

fn build_bdd(e: &Expr, m: &BddManager) -> Bdd {
    match e {
        Expr::Var(i) => m.var(&format!("v{i}")),
        Expr::Not(a) => build_bdd(a, m).not(),
        Expr::And(a, b) => build_bdd(a, m).and(&build_bdd(b, m)),
        Expr::Or(a, b) => build_bdd(a, m).or(&build_bdd(b, m)),
        Expr::Xor(a, b) => build_bdd(a, m).xor(&build_bdd(b, m)),
    }
}

#[test]
fn bdd_agrees_with_truth_table() {
    check("bdd_agrees_with_truth_table", 256, |g| {
        let e = gen_expr(g, 4);
        let m = BddManager::new();
        // Intern all four variables so sat_count's universe is fixed.
        for i in 0..4 {
            m.var(&format!("v{i}"));
        }
        let f = build_bdd(&e, &m);
        let mut count = 0u32;
        for env in 0u8..16 {
            let expected = eval_expr(&e, env);
            if expected {
                count += 1;
            }
            let got = f.eval(|name| {
                let i: u8 = name[1..].parse().unwrap();
                Some(env & (1 << i) != 0)
            });
            assert_eq!(expected, got);
        }
        assert_eq!(f.sat_count(), count as f64);
    });
}

#[test]
fn canonicity_equivalent_exprs_share_handles() {
    check("canonicity_equivalent_exprs_share_handles", 256, |g| {
        let e = gen_expr(g, 4);
        let m = BddManager::new();
        let f = build_bdd(&e, &m);
        // Double negation and De Morgan rewrites reach the same node.
        let h = match &e {
            Expr::And(a, b) => build_bdd(a, &m).not().or(&build_bdd(b, &m).not()).not(),
            _ => f.not().not(),
        };
        assert_eq!(f, h);
    });
}

#[test]
fn one_sat_models_satisfy() {
    check("one_sat_models_satisfy", 256, |g| {
        let e = gen_expr(g, 4);
        let m = BddManager::new();
        let f = build_bdd(&e, &m);
        if let Some(model) = f.one_sat() {
            let ok = f.eval(|name| {
                let id = m.var_id(name)?;
                model.iter().find(|&&(v, _)| v == id).map(|&(_, val)| val)
            });
            assert!(ok);
        } else {
            assert!(f.is_false());
        }
    });
}

#[test]
fn restrict_matches_semantic_cofactor() {
    check("restrict_matches_semantic_cofactor", 256, |g| {
        let e = gen_expr(g, 4);
        let var = g.u8(0..4);
        let val = g.bool();
        let m = BddManager::new();
        for i in 0..4 {
            m.var(&format!("v{i}"));
        }
        let f = build_bdd(&e, &m);
        let v = m.var_id(&format!("v{var}")).unwrap();
        let restricted = f.restrict(v, val);
        for env in 0u8..16 {
            let forced = if val {
                env | (1 << var)
            } else {
                env & !(1 << var)
            };
            let expected = eval_expr(&e, forced);
            let got = restricted.eval(|name| {
                let i: u8 = name[1..].parse().unwrap();
                Some(env & (1 << i) != 0)
            });
            assert_eq!(expected, got);
        }
    });
}

#[test]
fn dot_export_contains_structure() {
    let (m, a, b, _) = mgr3();
    let f = a.and(&b.not());
    let dot = f.to_dot();
    assert!(dot.starts_with("digraph bdd {"));
    assert!(dot.contains("\"A\"") && dot.contains("\"B\""));
    assert!(dot.contains("style=dashed"));
    assert!(dot.trim_end().ends_with('}'));
    // Terminals render too.
    assert!(m.tru().to_dot().contains("root -> t1"));
    assert!(m.fls().to_dot().contains("root -> t0"));
}

/// The apply cache is keyed on a canonical commutative form
/// `(op, min(f,g), max(f,g))`, so `g ∘ f` must be answered from the cache
/// entry `f ∘ g` created — hits only, no new Shannon expansion.
#[test]
fn commutative_apply_cache_symmetry() {
    let m = BddManager::new();
    let a = m.var("A");
    let b = m.var("B");
    let c = m.var("C");
    let f = a.or(&b);
    let g = b.and(&c);
    let fg = f.and(&g);
    let before = m.stats();
    let gf = g.and(&f);
    let after = m.stats();
    assert_eq!(fg, gf, "conjunction must be commutative");
    assert_eq!(
        after.cache_misses, before.cache_misses,
        "swapped operands must not expand again"
    );
    assert!(
        after.cache_hits > before.cache_hits,
        "swapped call must hit"
    );
    // Same symmetry for disjunction and xor.
    let fg = f.or(&g);
    let before = m.stats();
    let gf = g.or(&f);
    let after = m.stats();
    assert_eq!(fg, gf);
    assert_eq!(after.cache_misses, before.cache_misses);
    let fg = f.xor(&g);
    let before = m.stats();
    let gf = g.xor(&f);
    let after = m.stats();
    assert_eq!(fg, gf);
    assert_eq!(after.cache_misses, before.cache_misses);
    assert!(after.cache_hit_rate() > 0.0);
}

/// Randomized version: for arbitrary expression pairs, the swapped
/// operation returns the identical handle without new cache misses.
#[test]
fn commutative_apply_cache_symmetry_prop() {
    check("apply_cache_symmetry", 128, |g| {
        let ea = gen_expr(g, 3);
        let eb = gen_expr(g, 3);
        let m = BddManager::new();
        let fa = build_bdd(&ea, &m);
        let fb = build_bdd(&eb, &m);
        let ab = fa.and(&fb);
        let before = m.stats();
        let ba = fb.and(&fa);
        let after = m.stats();
        assert_eq!(ab, ba);
        assert_eq!(after.cache_misses, before.cache_misses);
        let ab = fa.or(&fb);
        let before = m.stats();
        let ba = fb.or(&fa);
        let after = m.stats();
        assert_eq!(ab, ba);
        assert_eq!(after.cache_misses, before.cache_misses);
    });
}
