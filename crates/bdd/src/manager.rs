//! The BDD node table, unique table, and apply cache.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

/// Index of a variable in a [`BddManager`]'s ordering.
///
/// Variables are ordered by creation; SuperC's presence-condition variables
/// arrive in source order, which works well in practice because related
/// conditionals tend to test related variables.
pub type VarId = u32;

type NodeId = u32;

const FALSE: NodeId = 0;
const TRUE: NodeId = 1;
/// Terminal nodes use a variable index past any real variable so that the
/// ordering test `var(f) < var(g)` treats terminals as "last".
const TERMINAL_VAR: VarId = u32::MAX;

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: VarId,
    low: NodeId,
    high: NodeId,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

struct Inner {
    nodes: Vec<Node>,
    unique: HashMap<Node, NodeId>,
    apply_cache: HashMap<(Op, NodeId, NodeId), NodeId>,
    not_cache: HashMap<NodeId, NodeId>,
    var_names: Vec<String>,
    var_ids: HashMap<String, VarId>,
    applies: u64,
}

impl Inner {
    fn new() -> Self {
        let terminal = |_: NodeId| Node {
            var: TERMINAL_VAR,
            low: 0,
            high: 0,
        };
        // Terminals are given distinct (low, high) so they never alias in the
        // unique table; they are only ever referenced by their fixed ids.
        let mut nodes = vec![terminal(FALSE), terminal(TRUE)];
        nodes[TRUE as usize].high = 1;
        Inner {
            nodes,
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            not_cache: HashMap::new(),
            var_names: Vec::new(),
            var_ids: HashMap::new(),
            applies: 0,
        }
    }

    fn var_of(&self, id: NodeId) -> VarId {
        self.nodes[id as usize].var
    }

    fn mk(&mut self, var: VarId, low: NodeId, high: NodeId) -> NodeId {
        if low == high {
            return low;
        }
        let node = Node { var, low, high };
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        let id = self.nodes.len() as NodeId;
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    fn mk_var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.var_ids.get(name) {
            return v;
        }
        let v = self.var_names.len() as VarId;
        self.var_names.push(name.to_string());
        self.var_ids.insert(name.to_string(), v);
        v
    }

    fn not(&mut self, f: NodeId) -> NodeId {
        match f {
            FALSE => TRUE,
            TRUE => FALSE,
            _ => {
                if let Some(&r) = self.not_cache.get(&f) {
                    return r;
                }
                let n = self.nodes[f as usize];
                let low = self.not(n.low);
                let high = self.not(n.high);
                let r = self.mk(n.var, low, high);
                self.not_cache.insert(f, r);
                r
            }
        }
    }

    fn apply(&mut self, op: Op, f: NodeId, g: NodeId) -> NodeId {
        self.applies += 1;
        // Terminal cases.
        match op {
            Op::And => {
                if f == FALSE || g == FALSE {
                    return FALSE;
                }
                if f == TRUE {
                    return g;
                }
                if g == TRUE || f == g {
                    return f;
                }
            }
            Op::Or => {
                if f == TRUE || g == TRUE {
                    return TRUE;
                }
                if f == FALSE {
                    return g;
                }
                if g == FALSE || f == g {
                    return f;
                }
            }
            Op::Xor => {
                if f == g {
                    return FALSE;
                }
                if f == FALSE {
                    return g;
                }
                if g == FALSE {
                    return f;
                }
                if f == TRUE {
                    return self.not(g);
                }
                if g == TRUE {
                    return self.not(f);
                }
            }
        }
        // Commutative ops: normalize the cache key.
        let key = if f <= g { (op, f, g) } else { (op, g, f) };
        if let Some(&r) = self.apply_cache.get(&key) {
            return r;
        }
        let (vf, vg) = (self.var_of(f), self.var_of(g));
        let var = vf.min(vg);
        let (f_lo, f_hi) = if vf == var {
            let n = self.nodes[f as usize];
            (n.low, n.high)
        } else {
            (f, f)
        };
        let (g_lo, g_hi) = if vg == var {
            let n = self.nodes[g as usize];
            (n.low, n.high)
        } else {
            (g, g)
        };
        let low = self.apply(op, f_lo, g_lo);
        let high = self.apply(op, f_hi, g_hi);
        let r = self.mk(var, low, high);
        self.apply_cache.insert(key, r);
        r
    }

    fn restrict(&mut self, f: NodeId, var: VarId, value: bool) -> NodeId {
        if f == FALSE || f == TRUE {
            return f;
        }
        let n = self.nodes[f as usize];
        if n.var > var {
            return f;
        }
        if n.var == var {
            let branch = if value { n.high } else { n.low };
            return self.restrict(branch, var, value);
        }
        let low = self.restrict(n.low, var, value);
        let high = self.restrict(n.high, var, value);
        self.mk(n.var, low, high)
    }

    fn support(&self, f: NodeId, out: &mut Vec<VarId>, seen: &mut HashMap<NodeId, ()>) {
        if f == FALSE || f == TRUE || seen.contains_key(&f) {
            return;
        }
        seen.insert(f, ());
        let n = self.nodes[f as usize];
        if !out.contains(&n.var) {
            out.push(n.var);
        }
        self.support(n.low, out, seen);
        self.support(n.high, out, seen);
    }

    fn level(&self, id: NodeId, nvars: u32) -> u32 {
        let v = self.var_of(id);
        if v == TERMINAL_VAR {
            nvars
        } else {
            v
        }
    }

    /// Satisfying assignments of `f` over the variables from `f`'s own level
    /// to `nvars`. The caller scales by `2^level(f)` for the full count.
    fn sat_count(&self, f: NodeId, nvars: u32, memo: &mut HashMap<NodeId, f64>) -> f64 {
        match f {
            FALSE => 0.0,
            TRUE => 1.0,
            _ => {
                if let Some(&c) = memo.get(&f) {
                    return c;
                }
                let n = self.nodes[f as usize];
                // Each variable level skipped between this node and a child
                // is a free choice, doubling that child's contribution.
                let lo = self.sat_count(n.low, nvars, memo)
                    * 2f64.powi((self.level(n.low, nvars) - n.var - 1) as i32);
                let hi = self.sat_count(n.high, nvars, memo)
                    * 2f64.powi((self.level(n.high, nvars) - n.var - 1) as i32);
                let c = lo + hi;
                memo.insert(f, c);
                c
            }
        }
    }

    fn one_sat(&self, f: NodeId, out: &mut Vec<(VarId, bool)>) -> bool {
        match f {
            FALSE => false,
            TRUE => true,
            _ => {
                let n = self.nodes[f as usize];
                if n.low != FALSE {
                    out.push((n.var, false));
                    if self.one_sat(n.low, out) {
                        return true;
                    }
                    out.pop();
                }
                if n.high != FALSE {
                    out.push((n.var, true));
                    if self.one_sat(n.high, out) {
                        return true;
                    }
                    out.pop();
                }
                false
            }
        }
    }
}

/// A shared BDD manager: node storage, variable interner, operation caches.
///
/// Cloning a manager is cheap (reference-counted); all clones share nodes, so
/// [`Bdd`]s created through any clone are comparable.
///
/// # Examples
///
/// ```
/// use superc_bdd::BddManager;
/// let mgr = BddManager::new();
/// let x = mgr.var("X");
/// assert!(x.or(&x.not()).is_true());
/// ```
#[derive(Clone)]
pub struct BddManager {
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "BddManager {{ nodes: {}, vars: {} }}",
            s.nodes, s.variables
        )
    }
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates an empty manager containing only the `true`/`false` terminals.
    pub fn new() -> Self {
        BddManager {
            inner: Rc::new(RefCell::new(Inner::new())),
        }
    }

    fn wrap(&self, id: NodeId) -> Bdd {
        Bdd {
            mgr: Rc::clone(&self.inner),
            id,
        }
    }

    /// The constant `true` function.
    pub fn tru(&self) -> Bdd {
        self.wrap(TRUE)
    }

    /// The constant `false` function.
    pub fn fls(&self) -> Bdd {
        self.wrap(FALSE)
    }

    /// A constant function chosen by `value`.
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            self.tru()
        } else {
            self.fls()
        }
    }

    /// The variable named `name`, interning it on first use.
    ///
    /// Repeated calls with the same name return the same function, which is
    /// how SuperC guarantees that repeated occurrences of the same free
    /// macro or opaque arithmetic expression map to one variable (§3.2).
    pub fn var(&self, name: &str) -> Bdd {
        let mut inner = self.inner.borrow_mut();
        let v = inner.mk_var(name);
        let id = inner.mk(v, FALSE, TRUE);
        drop(inner);
        self.wrap(id)
    }

    /// The negation of the variable named `name`.
    pub fn nvar(&self, name: &str) -> Bdd {
        self.var(name).not()
    }

    /// Returns the id of variable `name` if it has been interned.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.inner.borrow().var_ids.get(name).copied()
    }

    /// The name of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not created by this manager.
    pub fn var_name(&self, v: VarId) -> String {
        self.inner.borrow().var_names[v as usize].clone()
    }

    /// Number of distinct variables interned so far.
    pub fn num_vars(&self) -> u32 {
        self.inner.borrow().var_names.len() as u32
    }

    /// Counters describing the manager's current size and work done.
    pub fn stats(&self) -> BddStats {
        let inner = self.inner.borrow();
        BddStats {
            nodes: inner.nodes.len(),
            variables: inner.var_names.len(),
            apply_calls: inner.applies,
        }
    }
}

/// Size and work counters for a [`BddManager`], from [`BddManager::stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BddStats {
    /// Total allocated nodes including terminals.
    pub nodes: usize,
    /// Interned variables.
    pub variables: usize,
    /// Recursive apply steps performed (a proxy for work).
    pub apply_calls: u64,
}

/// A handle to a boolean function in some [`BddManager`].
///
/// Handles are canonical: `a == b` holds exactly when the functions are
/// logically equivalent (and from the same manager). Cloning is cheap.
///
/// # Examples
///
/// ```
/// use superc_bdd::BddManager;
/// let mgr = BddManager::new();
/// let (a, b) = (mgr.var("A"), mgr.var("B"));
/// let f = a.and(&b).or(&a.and(&b.not()));
/// assert_eq!(f, a); // (A∧B) ∨ (A∧¬B) simplifies to A
/// ```
#[derive(Clone)]
pub struct Bdd {
    mgr: Rc<RefCell<Inner>>,
    id: NodeId,
}

impl PartialEq for Bdd {
    fn eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.mgr, &other.mgr) && self.id == other.id
    }
}
impl Eq for Bdd {}

impl Hash for Bdd {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl Bdd {
    /// True if this is the constant `false` function — the infeasibility test
    /// SuperC runs when trimming macro-table entries and dead branches.
    pub fn is_false(&self) -> bool {
        self.id == FALSE
    }

    /// True if this is the constant `true` function.
    pub fn is_true(&self) -> bool {
        self.id == TRUE
    }

    /// The manager this function lives in.
    pub fn manager(&self) -> BddManager {
        BddManager {
            inner: Rc::clone(&self.mgr),
        }
    }

    fn wrap(&self, id: NodeId) -> Bdd {
        Bdd {
            mgr: Rc::clone(&self.mgr),
            id,
        }
    }

    fn binop(&self, other: &Bdd, op: Op) -> Bdd {
        debug_assert!(
            Rc::ptr_eq(&self.mgr, &other.mgr),
            "BDD operands from different managers"
        );
        let id = self.mgr.borrow_mut().apply(op, self.id, other.id);
        self.wrap(id)
    }

    /// Logical conjunction.
    pub fn and(&self, other: &Bdd) -> Bdd {
        self.binop(other, Op::And)
    }

    /// Logical disjunction.
    pub fn or(&self, other: &Bdd) -> Bdd {
        self.binop(other, Op::Or)
    }

    /// Exclusive or.
    pub fn xor(&self, other: &Bdd) -> Bdd {
        self.binop(other, Op::Xor)
    }

    /// Logical negation.
    pub fn not(&self) -> Bdd {
        let id = self.mgr.borrow_mut().not(self.id);
        self.wrap(id)
    }

    /// Material implication `self → other`.
    pub fn implies(&self, other: &Bdd) -> Bdd {
        self.not().or(other)
    }

    /// Biconditional `self ↔ other`.
    pub fn iff(&self, other: &Bdd) -> Bdd {
        self.xor(other).not()
    }

    /// True when `self → other` is a tautology.
    pub fn implies_true(&self, other: &Bdd) -> bool {
        self.implies(other).is_true()
    }

    /// True when `self ∧ other` is satisfiable — the feasibility check used
    /// throughout configuration-preserving preprocessing.
    pub fn feasible_with(&self, other: &Bdd) -> bool {
        !self.and(other).is_false()
    }

    /// The cofactor of this function with `var` fixed to `value`.
    pub fn restrict(&self, var: VarId, value: bool) -> Bdd {
        let id = self.mgr.borrow_mut().restrict(self.id, var, value);
        self.wrap(id)
    }

    /// Variables this function actually depends on, in ordering order.
    pub fn support(&self) -> Vec<VarId> {
        let inner = self.mgr.borrow();
        let mut out = Vec::new();
        let mut seen = HashMap::new();
        inner.support(self.id, &mut out, &mut seen);
        out.sort_unstable();
        out
    }

    /// Number of satisfying assignments over the manager's full variable set.
    ///
    /// Returned as `f64` because configuration counts grow exponentially
    /// (the paper's Figure 6 initializer alone has 2^18 configurations).
    pub fn sat_count(&self) -> f64 {
        let inner = self.mgr.borrow();
        let nvars = inner.var_names.len() as u32;
        let mut memo = HashMap::new();
        let below = inner.sat_count(self.id, nvars, &mut memo);
        below * 2f64.powi(inner.level(self.id, nvars) as i32)
    }

    /// One satisfying partial assignment, or `None` if unsatisfiable.
    ///
    /// Variables absent from the result may take either value.
    pub fn one_sat(&self) -> Option<Vec<(VarId, bool)>> {
        let inner = self.mgr.borrow();
        let mut out = Vec::new();
        if inner.one_sat(self.id, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// Evaluates this function under a complete assignment given by `env`.
    ///
    /// Variables for which `env` returns `None` default to `false`.
    pub fn eval(&self, env: impl Fn(&str) -> Option<bool>) -> bool {
        let inner = self.mgr.borrow();
        let mut id = self.id;
        loop {
            match id {
                FALSE => return false,
                TRUE => return true,
                _ => {
                    let n = inner.nodes[id as usize];
                    let name = &inner.var_names[n.var as usize];
                    id = if env(name).unwrap_or(false) {
                        n.high
                    } else {
                        n.low
                    };
                }
            }
        }
    }

    /// Visits each internal node once with `(id, variable name, low ref,
    /// high ref)` where refs are `t0`, `t1`, or `n<id>` (for DOT export).
    pub(crate) fn walk_nodes(&self, f: &mut dyn FnMut(usize, String, String, String)) {
        let inner = self.mgr.borrow();
        let name = |x: NodeId| match x {
            FALSE => "t0".to_string(),
            TRUE => "t1".to_string(),
            n => format!("n{n}"),
        };
        let mut seen: HashMap<NodeId, ()> = HashMap::new();
        let mut stack = vec![self.id];
        while let Some(id) = stack.pop() {
            if id == FALSE || id == TRUE || seen.insert(id, ()).is_some() {
                continue;
            }
            let n = inner.nodes[id as usize];
            f(
                id as usize,
                inner.var_names[n.var as usize].clone(),
                name(n.low),
                name(n.high),
            );
            stack.push(n.low);
            stack.push(n.high);
        }
    }

    /// Internal node count of this function (shared nodes counted once).
    pub fn node_count(&self) -> usize {
        let inner = self.mgr.borrow();
        let mut seen = HashMap::new();
        fn walk(inner: &Inner, id: NodeId, seen: &mut HashMap<NodeId, ()>) -> usize {
            if id == FALSE || id == TRUE || seen.contains_key(&id) {
                return 0;
            }
            seen.insert(id, ());
            let n = inner.nodes[id as usize];
            1 + walk(inner, n.low, seen) + walk(inner, n.high, seen)
        }
        walk(&inner, self.id, &mut seen)
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bdd({})", self)
    }
}

impl fmt::Display for Bdd {
    /// Renders the function as a disjunction of up to four cubes, eliding the
    /// rest — presence conditions in reports stay readable this way.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_true() {
            return write!(f, "1");
        }
        if self.is_false() {
            return write!(f, "0");
        }
        let inner = self.mgr.borrow();
        let mut cubes: Vec<String> = Vec::new();
        let mut stack: Vec<(NodeId, Vec<(VarId, bool)>)> = vec![(self.id, Vec::new())];
        while let Some((id, path)) = stack.pop() {
            if cubes.len() > 4 {
                break;
            }
            match id {
                FALSE => {}
                TRUE => {
                    let cube: Vec<String> = path
                        .iter()
                        .map(|&(v, pos)| {
                            let name = &inner.var_names[v as usize];
                            if pos {
                                name.clone()
                            } else {
                                format!("!{name}")
                            }
                        })
                        .collect();
                    cubes.push(if cube.is_empty() {
                        "1".to_string()
                    } else {
                        cube.join(" && ")
                    });
                }
                _ => {
                    let n = inner.nodes[id as usize];
                    let mut hi = path.clone();
                    hi.push((n.var, true));
                    let mut lo = path;
                    lo.push((n.var, false));
                    stack.push((n.high, hi));
                    stack.push((n.low, lo));
                }
            }
        }
        if cubes.len() > 4 {
            cubes.truncate(4);
            cubes.push("...".to_string());
        }
        write!(f, "{}", cubes.join(" || "))
    }
}
