//! The BDD node table, unique table, and apply cache.
//!
//! All interior tables are [`FastMap`]s (FxHash): the unique table and
//! operation caches are keyed on small integers, where SipHash's
//! per-lookup cost dominated profiles. Variable names live in a shared
//! [`Interner`] so that presence-condition variables can be compared and
//! hashed as `u32` [`Symbol`]s across the preprocessor and parser.

use std::cell::RefCell;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use superc_util::{FastMap, FastSet, Interner, Symbol};

/// Index of a variable in a [`BddManager`]'s ordering.
///
/// Variables are ordered by creation; SuperC's presence-condition variables
/// arrive in source order, which works well in practice because related
/// conditionals tend to test related variables.
pub type VarId = u32;

type NodeId = u32;

const FALSE: NodeId = 0;
const TRUE: NodeId = 1;
/// Terminal nodes use a variable index past any real variable so that the
/// ordering test `var(f) < var(g)` treats terminals as "last".
const TERMINAL_VAR: VarId = u32::MAX;

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: VarId,
    low: NodeId,
    high: NodeId,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

struct Inner {
    nodes: Vec<Node>,
    unique: FastMap<Node, NodeId>,
    apply_cache: FastMap<(Op, NodeId, NodeId), NodeId>,
    not_cache: FastMap<NodeId, NodeId>,
    interner: Interner,
    var_syms: Vec<Symbol>,
    var_ids: FastMap<Symbol, VarId>,
    applies: u64,
    cache_hits: u64,
    cache_misses: u64,
    /// Work-stack buffers reused across `apply` calls so the common
    /// cache-hit/terminal case never allocates.
    apply_tasks: Vec<ApplyTask>,
    apply_results: Vec<NodeId>,
}

/// A frame of the explicit apply work stack: either a pair still to
/// expand, or a pending `mk` once both cofactor results are available.
enum ApplyTask {
    Expand(NodeId, NodeId),
    Combine {
        var: VarId,
        key: (Op, NodeId, NodeId),
    },
}

impl Inner {
    fn new(interner: Interner) -> Self {
        let terminal = |_: NodeId| Node {
            var: TERMINAL_VAR,
            low: 0,
            high: 0,
        };
        // Terminals are given distinct (low, high) so they never alias in the
        // unique table; they are only ever referenced by their fixed ids.
        let mut nodes = vec![terminal(FALSE), terminal(TRUE)];
        nodes[TRUE as usize].high = 1;
        Inner {
            nodes,
            unique: FastMap::default(),
            apply_cache: FastMap::default(),
            not_cache: FastMap::default(),
            interner,
            var_syms: Vec::new(),
            var_ids: FastMap::default(),
            applies: 0,
            cache_hits: 0,
            cache_misses: 0,
            apply_tasks: Vec::new(),
            apply_results: Vec::new(),
        }
    }

    fn var_of(&self, id: NodeId) -> VarId {
        self.nodes[id as usize].var
    }

    fn mk(&mut self, var: VarId, low: NodeId, high: NodeId) -> NodeId {
        if low == high {
            return low;
        }
        let node = Node { var, low, high };
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        let id = self.nodes.len() as NodeId;
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    fn mk_var(&mut self, name: &str) -> VarId {
        let sym = self.interner.intern(name);
        self.mk_var_sym(sym)
    }

    fn mk_var_sym(&mut self, sym: Symbol) -> VarId {
        if let Some(&v) = self.var_ids.get(&sym) {
            return v;
        }
        let v = self.var_syms.len() as VarId;
        self.var_syms.push(sym);
        self.var_ids.insert(sym, v);
        v
    }

    fn not(&mut self, f: NodeId) -> NodeId {
        match f {
            FALSE => TRUE,
            TRUE => FALSE,
            _ => {
                if let Some(&r) = self.not_cache.get(&f) {
                    return r;
                }
                let n = self.nodes[f as usize];
                let low = self.not(n.low);
                let high = self.not(n.high);
                let r = self.mk(n.var, low, high);
                self.not_cache.insert(f, r);
                r
            }
        }
    }

    /// Resolves the constant/absorption cases of `op` without touching the
    /// node table. `None` means both operands are internal nodes and the
    /// Shannon expansion is needed.
    fn apply_terminal(&mut self, op: Op, f: NodeId, g: NodeId) -> Option<NodeId> {
        match op {
            Op::And => {
                if f == FALSE || g == FALSE {
                    return Some(FALSE);
                }
                if f == TRUE {
                    return Some(g);
                }
                if g == TRUE || f == g {
                    return Some(f);
                }
            }
            Op::Or => {
                if f == TRUE || g == TRUE {
                    return Some(TRUE);
                }
                if f == FALSE {
                    return Some(g);
                }
                if g == FALSE || f == g {
                    return Some(f);
                }
            }
            Op::Xor => {
                if f == g {
                    return Some(FALSE);
                }
                if f == FALSE {
                    return Some(g);
                }
                if g == FALSE {
                    return Some(f);
                }
                if f == TRUE {
                    return Some(self.not(g));
                }
                if g == TRUE {
                    return Some(self.not(f));
                }
            }
        }
        None
    }

    /// Pushes the Shannon expansion of a known cache miss `(op, f, g)`:
    /// a pending `mk` followed by the two cofactor pairs. The low pair
    /// completes first (it is popped first), so the matching `Combine`
    /// sees `results = [.., low, high]`.
    fn expand_into(
        &self,
        f: NodeId,
        g: NodeId,
        key: (Op, NodeId, NodeId),
        tasks: &mut Vec<ApplyTask>,
    ) {
        let (vf, vg) = (self.var_of(f), self.var_of(g));
        let var = vf.min(vg);
        let (f_lo, f_hi) = if vf == var {
            let n = self.nodes[f as usize];
            (n.low, n.high)
        } else {
            (f, f)
        };
        let (g_lo, g_hi) = if vg == var {
            let n = self.nodes[g as usize];
            (n.low, n.high)
        } else {
            (g, g)
        };
        tasks.push(ApplyTask::Combine { var, key });
        tasks.push(ApplyTask::Expand(f_hi, g_hi));
        tasks.push(ApplyTask::Expand(f_lo, g_lo));
    }

    fn apply(&mut self, op: Op, f: NodeId, g: NodeId) -> NodeId {
        // Fast path: most calls hit a terminal rule or the apply cache and
        // return without touching the work stacks.
        self.applies += 1;
        if let Some(r) = self.apply_terminal(op, f, g) {
            return r;
        }
        // Commutative ops: normalize the cache key.
        let key = if f <= g { (op, f, g) } else { (op, g, f) };
        if let Some(&r) = self.apply_cache.get(&key) {
            self.cache_hits += 1;
            return r;
        }
        self.cache_misses += 1;
        self.apply_expand(op, f, g, key)
    }

    /// Shannon-expands a cache-missing `(op, f, g)` with an explicit work
    /// stack instead of recursion, so deeply nested presence conditions
    /// cannot overflow the call stack. `tasks` holds pairs still to expand
    /// interleaved with pending `mk`s; `results` is the value stack the
    /// two consume. Both buffers live in `Inner` and are reused.
    fn apply_expand(&mut self, op: Op, f: NodeId, g: NodeId, key: (Op, NodeId, NodeId)) -> NodeId {
        let mut tasks = std::mem::take(&mut self.apply_tasks);
        let mut results = std::mem::take(&mut self.apply_results);
        self.expand_into(f, g, key, &mut tasks);
        while let Some(task) = tasks.pop() {
            match task {
                ApplyTask::Expand(f, g) => {
                    self.applies += 1;
                    if let Some(r) = self.apply_terminal(op, f, g) {
                        results.push(r);
                        continue;
                    }
                    let key = if f <= g { (op, f, g) } else { (op, g, f) };
                    if let Some(&r) = self.apply_cache.get(&key) {
                        self.cache_hits += 1;
                        results.push(r);
                        continue;
                    }
                    self.cache_misses += 1;
                    self.expand_into(f, g, key, &mut tasks);
                }
                ApplyTask::Combine { var, key } => {
                    let high = results.pop().expect("high cofactor computed");
                    let low = results.pop().expect("low cofactor computed");
                    let r = self.mk(var, low, high);
                    self.apply_cache.insert(key, r);
                    results.push(r);
                }
            }
        }
        let r = results.pop().expect("apply leaves one result");
        debug_assert!(tasks.is_empty() && results.is_empty());
        self.apply_tasks = tasks;
        self.apply_results = results;
        r
    }

    fn restrict(&mut self, f: NodeId, var: VarId, value: bool) -> NodeId {
        if f == FALSE || f == TRUE {
            return f;
        }
        let n = self.nodes[f as usize];
        if n.var > var {
            return f;
        }
        if n.var == var {
            let branch = if value { n.high } else { n.low };
            return self.restrict(branch, var, value);
        }
        let low = self.restrict(n.low, var, value);
        let high = self.restrict(n.high, var, value);
        self.mk(n.var, low, high)
    }

    fn support(&self, f: NodeId, out: &mut Vec<VarId>, seen: &mut FastSet<NodeId>) {
        if f == FALSE || f == TRUE || !seen.insert(f) {
            return;
        }
        let n = self.nodes[f as usize];
        if !out.contains(&n.var) {
            out.push(n.var);
        }
        self.support(n.low, out, seen);
        self.support(n.high, out, seen);
    }

    fn level(&self, id: NodeId, nvars: u32) -> u32 {
        let v = self.var_of(id);
        if v == TERMINAL_VAR {
            nvars
        } else {
            v
        }
    }

    /// Satisfying assignments of `f` over the variables from `f`'s own level
    /// to `nvars`. The caller scales by `2^level(f)` for the full count.
    fn sat_count(&self, f: NodeId, nvars: u32, memo: &mut FastMap<NodeId, f64>) -> f64 {
        match f {
            FALSE => 0.0,
            TRUE => 1.0,
            _ => {
                if let Some(&c) = memo.get(&f) {
                    return c;
                }
                let n = self.nodes[f as usize];
                // Each variable level skipped between this node and a child
                // is a free choice, doubling that child's contribution.
                let lo = self.sat_count(n.low, nvars, memo)
                    * 2f64.powi((self.level(n.low, nvars) - n.var - 1) as i32);
                let hi = self.sat_count(n.high, nvars, memo)
                    * 2f64.powi((self.level(n.high, nvars) - n.var - 1) as i32);
                let c = lo + hi;
                memo.insert(f, c);
                c
            }
        }
    }

    fn one_sat(&self, f: NodeId, out: &mut Vec<(VarId, bool)>) -> bool {
        match f {
            FALSE => false,
            TRUE => true,
            _ => {
                let n = self.nodes[f as usize];
                if n.low != FALSE {
                    out.push((n.var, false));
                    if self.one_sat(n.low, out) {
                        return true;
                    }
                    out.pop();
                }
                if n.high != FALSE {
                    out.push((n.var, true));
                    if self.one_sat(n.high, out) {
                        return true;
                    }
                    out.pop();
                }
                false
            }
        }
    }
}

/// A shared BDD manager: node storage, variable interner, operation caches.
///
/// Cloning a manager is cheap (reference-counted); all clones share nodes, so
/// [`Bdd`]s created through any clone are comparable.
///
/// # Examples
///
/// ```
/// use superc_bdd::BddManager;
/// let mgr = BddManager::new();
/// let x = mgr.var("X");
/// assert!(x.or(&x.not()).is_true());
/// ```
#[derive(Clone)]
pub struct BddManager {
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "BddManager {{ nodes: {}, vars: {} }}",
            s.nodes, s.variables
        )
    }
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates an empty manager containing only the `true`/`false` terminals,
    /// with its own private name interner.
    pub fn new() -> Self {
        Self::with_interner(Interner::new())
    }

    /// Creates an empty manager whose variable names live in `interner`.
    ///
    /// Sharing one interner across the preprocessor, condition context,
    /// and BDD manager makes a [`Symbol`] mean the same spelling
    /// everywhere in a pipeline, so callers holding a symbol can use
    /// [`BddManager::var_sym`] and skip string hashing entirely.
    pub fn with_interner(interner: Interner) -> Self {
        BddManager {
            inner: Rc::new(RefCell::new(Inner::new(interner))),
        }
    }

    /// A handle to the manager's name interner (cheap to clone, shared).
    pub fn interner(&self) -> Interner {
        self.inner.borrow().interner.clone()
    }

    fn wrap(&self, id: NodeId) -> Bdd {
        Bdd {
            mgr: Rc::clone(&self.inner),
            id,
        }
    }

    /// The constant `true` function.
    pub fn tru(&self) -> Bdd {
        self.wrap(TRUE)
    }

    /// The constant `false` function.
    pub fn fls(&self) -> Bdd {
        self.wrap(FALSE)
    }

    /// A constant function chosen by `value`.
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            self.tru()
        } else {
            self.fls()
        }
    }

    /// The variable named `name`, interning it on first use.
    ///
    /// Repeated calls with the same name return the same function, which is
    /// how SuperC guarantees that repeated occurrences of the same free
    /// macro or opaque arithmetic expression map to one variable (§3.2).
    pub fn var(&self, name: &str) -> Bdd {
        let mut inner = self.inner.borrow_mut();
        let v = inner.mk_var(name);
        let id = inner.mk(v, FALSE, TRUE);
        drop(inner);
        self.wrap(id)
    }

    /// The variable for an already-interned `sym` from this manager's
    /// interner — the string-free fast path of [`BddManager::var`].
    pub fn var_sym(&self, sym: Symbol) -> Bdd {
        let mut inner = self.inner.borrow_mut();
        let v = inner.mk_var_sym(sym);
        let id = inner.mk(v, FALSE, TRUE);
        drop(inner);
        self.wrap(id)
    }

    /// The negation of the variable named `name`.
    pub fn nvar(&self, name: &str) -> Bdd {
        self.var(name).not()
    }

    /// Returns the id of variable `name` if it has been interned.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        let inner = self.inner.borrow();
        let sym = inner.interner.get(name)?;
        inner.var_ids.get(&sym).copied()
    }

    /// The name of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not created by this manager.
    pub fn var_name(&self, v: VarId) -> String {
        let inner = self.inner.borrow();
        inner
            .interner
            .resolve(inner.var_syms[v as usize])
            .to_string()
    }

    /// Number of distinct variables interned so far.
    pub fn num_vars(&self) -> u32 {
        self.inner.borrow().var_syms.len() as u32
    }

    /// Counters describing the manager's current size and work done.
    pub fn stats(&self) -> BddStats {
        let inner = self.inner.borrow();
        BddStats {
            nodes: inner.nodes.len(),
            variables: inner.var_syms.len(),
            apply_calls: inner.applies,
            cache_hits: inner.cache_hits,
            cache_misses: inner.cache_misses,
        }
    }
}

/// Size and work counters for a [`BddManager`], from [`BddManager::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BddStats {
    /// Total allocated nodes including terminals.
    pub nodes: usize,
    /// Interned variables.
    pub variables: usize,
    /// Recursive apply steps performed (a proxy for work).
    pub apply_calls: u64,
    /// Apply-cache lookups that found a memoized result.
    pub cache_hits: u64,
    /// Apply-cache lookups that missed and recursed.
    pub cache_misses: u64,
}

impl BddStats {
    /// Accumulates another manager's counters (corpus-level reporting over
    /// per-worker managers). Gauges (`nodes`, `variables`) are summed too:
    /// the aggregate reads as total allocation across workers.
    pub fn merge(&mut self, other: &BddStats) {
        self.nodes += other.nodes;
        self.variables += other.variables;
        self.apply_calls += other.apply_calls;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }

    /// Apply-cache hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// A handle to a boolean function in some [`BddManager`].
///
/// Handles are canonical: `a == b` holds exactly when the functions are
/// logically equivalent (and from the same manager). Cloning is cheap.
///
/// # Examples
///
/// ```
/// use superc_bdd::BddManager;
/// let mgr = BddManager::new();
/// let (a, b) = (mgr.var("A"), mgr.var("B"));
/// let f = a.and(&b).or(&a.and(&b.not()));
/// assert_eq!(f, a); // (A∧B) ∨ (A∧¬B) simplifies to A
/// ```
#[derive(Clone)]
pub struct Bdd {
    mgr: Rc<RefCell<Inner>>,
    id: NodeId,
}

impl PartialEq for Bdd {
    fn eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.mgr, &other.mgr) && self.id == other.id
    }
}
impl Eq for Bdd {}

impl Hash for Bdd {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl Bdd {
    /// True if this is the constant `false` function — the infeasibility test
    /// SuperC runs when trimming macro-table entries and dead branches.
    pub fn is_false(&self) -> bool {
        self.id == FALSE
    }

    /// True if this is the constant `true` function.
    pub fn is_true(&self) -> bool {
        self.id == TRUE
    }

    /// The manager this function lives in.
    pub fn manager(&self) -> BddManager {
        BddManager {
            inner: Rc::clone(&self.mgr),
        }
    }

    /// The node id of this function's root. BDDs are canonical within a
    /// manager, so within one manager equal ids mean equal functions —
    /// a stable, cheap memo key. Ids from different managers (different
    /// workers) are incomparable.
    pub fn handle_id(&self) -> u64 {
        self.id as u64
    }

    fn wrap(&self, id: NodeId) -> Bdd {
        Bdd {
            mgr: Rc::clone(&self.mgr),
            id,
        }
    }

    fn binop(&self, other: &Bdd, op: Op) -> Bdd {
        debug_assert!(
            Rc::ptr_eq(&self.mgr, &other.mgr),
            "BDD operands from different managers"
        );
        let id = self.mgr.borrow_mut().apply(op, self.id, other.id);
        self.wrap(id)
    }

    /// Logical conjunction.
    pub fn and(&self, other: &Bdd) -> Bdd {
        self.binop(other, Op::And)
    }

    /// Logical disjunction.
    pub fn or(&self, other: &Bdd) -> Bdd {
        self.binop(other, Op::Or)
    }

    /// Exclusive or.
    pub fn xor(&self, other: &Bdd) -> Bdd {
        self.binop(other, Op::Xor)
    }

    /// Logical negation.
    pub fn not(&self) -> Bdd {
        let id = self.mgr.borrow_mut().not(self.id);
        self.wrap(id)
    }

    /// Material implication `self → other`.
    pub fn implies(&self, other: &Bdd) -> Bdd {
        self.not().or(other)
    }

    /// Biconditional `self ↔ other`.
    pub fn iff(&self, other: &Bdd) -> Bdd {
        self.xor(other).not()
    }

    /// True when `self → other` is a tautology.
    pub fn implies_true(&self, other: &Bdd) -> bool {
        self.implies(other).is_true()
    }

    /// True when `self ∧ other` is satisfiable — the feasibility check used
    /// throughout configuration-preserving preprocessing.
    pub fn feasible_with(&self, other: &Bdd) -> bool {
        !self.and(other).is_false()
    }

    /// The cofactor of this function with `var` fixed to `value`.
    pub fn restrict(&self, var: VarId, value: bool) -> Bdd {
        let id = self.mgr.borrow_mut().restrict(self.id, var, value);
        self.wrap(id)
    }

    /// Variables this function actually depends on, in ordering order.
    pub fn support(&self) -> Vec<VarId> {
        let inner = self.mgr.borrow();
        let mut out = Vec::new();
        let mut seen = FastSet::default();
        inner.support(self.id, &mut out, &mut seen);
        out.sort_unstable();
        out
    }

    /// Number of satisfying assignments over the manager's full variable set.
    ///
    /// Returned as `f64` because configuration counts grow exponentially
    /// (the paper's Figure 6 initializer alone has 2^18 configurations).
    pub fn sat_count(&self) -> f64 {
        let inner = self.mgr.borrow();
        let nvars = inner.var_syms.len() as u32;
        let mut memo = FastMap::default();
        let below = inner.sat_count(self.id, nvars, &mut memo);
        below * 2f64.powi(inner.level(self.id, nvars) as i32)
    }

    /// One satisfying partial assignment, or `None` if unsatisfiable.
    ///
    /// Variables absent from the result may take either value.
    pub fn one_sat(&self) -> Option<Vec<(VarId, bool)>> {
        let inner = self.mgr.borrow();
        let mut out = Vec::new();
        if inner.one_sat(self.id, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// Evaluates this function under a complete assignment given by `env`.
    ///
    /// Variables for which `env` returns `None` default to `false`.
    pub fn eval(&self, env: impl Fn(&str) -> Option<bool>) -> bool {
        let inner = self.mgr.borrow();
        let mut id = self.id;
        loop {
            match id {
                FALSE => return false,
                TRUE => return true,
                _ => {
                    let n = inner.nodes[id as usize];
                    let name = inner.interner.resolve(inner.var_syms[n.var as usize]);
                    id = if env(&name).unwrap_or(false) {
                        n.high
                    } else {
                        n.low
                    };
                }
            }
        }
    }

    /// Visits each internal node once with `(id, variable name, low ref,
    /// high ref)` where refs are `t0`, `t1`, or `n<id>` (for DOT export).
    pub(crate) fn walk_nodes(&self, f: &mut dyn FnMut(usize, String, String, String)) {
        let inner = self.mgr.borrow();
        let name = |x: NodeId| match x {
            FALSE => "t0".to_string(),
            TRUE => "t1".to_string(),
            n => format!("n{n}"),
        };
        let mut seen: FastSet<NodeId> = FastSet::default();
        let mut stack = vec![self.id];
        while let Some(id) = stack.pop() {
            if id == FALSE || id == TRUE || !seen.insert(id) {
                continue;
            }
            let n = inner.nodes[id as usize];
            f(
                id as usize,
                inner
                    .interner
                    .resolve(inner.var_syms[n.var as usize])
                    .to_string(),
                name(n.low),
                name(n.high),
            );
            stack.push(n.low);
            stack.push(n.high);
        }
    }

    /// Internal node count of this function (shared nodes counted once).
    pub fn node_count(&self) -> usize {
        let inner = self.mgr.borrow();
        let mut seen = FastSet::default();
        fn walk(inner: &Inner, id: NodeId, seen: &mut FastSet<NodeId>) -> usize {
            if id == FALSE || id == TRUE || !seen.insert(id) {
                return 0;
            }
            let n = inner.nodes[id as usize];
            1 + walk(inner, n.low, seen) + walk(inner, n.high, seen)
        }
        walk(&inner, self.id, &mut seen)
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bdd({})", self)
    }
}

impl fmt::Display for Bdd {
    /// Renders the function as a disjunction of up to four cubes, eliding the
    /// rest — presence conditions in reports stay readable this way.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_true() {
            return write!(f, "1");
        }
        if self.is_false() {
            return write!(f, "0");
        }
        let inner = self.mgr.borrow();
        let mut cubes: Vec<String> = Vec::new();
        let mut stack: Vec<(NodeId, Vec<(VarId, bool)>)> = vec![(self.id, Vec::new())];
        while let Some((id, path)) = stack.pop() {
            if cubes.len() > 4 {
                break;
            }
            match id {
                FALSE => {}
                TRUE => {
                    let cube: Vec<String> = path
                        .iter()
                        .map(|&(v, pos)| {
                            let name = inner.interner.resolve(inner.var_syms[v as usize]);
                            if pos {
                                name.to_string()
                            } else {
                                format!("!{name}")
                            }
                        })
                        .collect();
                    cubes.push(if cube.is_empty() {
                        "1".to_string()
                    } else {
                        cube.join(" && ")
                    });
                }
                _ => {
                    let n = inner.nodes[id as usize];
                    let mut hi = path.clone();
                    hi.push((n.var, true));
                    let mut lo = path;
                    lo.push((n.var, false));
                    stack.push((n.high, hi));
                    stack.push((n.low, lo));
                }
            }
        }
        if cubes.len() > 4 {
            cubes.truncate(4);
            cubes.push("...".to_string());
        }
        write!(f, "{}", cubes.join(" || "))
    }
}
