//! Reduced Ordered Binary Decision Diagrams (ROBDDs).
//!
//! SuperC (Gazzillo & Grimm, PLDI 2012, §3.2) represents *presence
//! conditions* — the boolean functions over configuration variables under
//! which a token, macro definition, or AST node is present — as BDDs. The
//! original implementation used JavaBDD; this crate is a from-scratch
//! substitute providing the same essentials:
//!
//! * **Canonicity.** Two boolean functions are equal if and only if their
//!   BDD handles are equal (`==` on [`Bdd`] is an O(1) index compare).
//!   This is what makes feasibility checks (`c1 ∧ c2 = false`) and subparser
//!   merging cheap.
//! * **Boolean operations.** Negation, conjunction, disjunction, plus the
//!   derived implication/biconditional, all memoized through an apply cache.
//! * **Named variables.** Presence-condition variables are free macros,
//!   `defined(M)` tests, and opaque non-boolean expressions; the manager
//!   interns them by name.
//!
//! # Examples
//!
//! ```
//! use superc_bdd::BddManager;
//!
//! let mgr = BddManager::new();
//! let a = mgr.var("defined(CONFIG_64BIT)");
//! let b = mgr.var("defined(CONFIG_SMP)");
//!
//! // Canonicity: conjunction is commutative, and the handles agree.
//! assert_eq!(a.and(&b), b.and(&a));
//! // Feasibility: a branch under `a && !a` is dead.
//! assert!(a.and(&a.not()).is_false());
//! ```

mod dot;
mod manager;

pub use manager::{Bdd, BddManager, BddStats, VarId};
// Hot-path hashing and interning primitives, re-exported so downstream
// crates pick up the same FxHash-based containers without a direct
// superc-util dependency.
pub use superc_util::{FastMap, FastSet, FxBuildHasher, Interner, Symbol};

#[cfg(test)]
mod tests;
