//! Graphviz DOT export for BDDs — presence conditions are much easier to
//! debug as pictures when conditionals nest deeply.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::manager::Bdd;

impl Bdd {
    /// Renders this function as a Graphviz `digraph`.
    ///
    /// Solid edges are the high (true) branches, dashed edges the low
    /// (false) branches; terminals are boxes.
    ///
    /// # Examples
    ///
    /// ```
    /// use superc_bdd::BddManager;
    /// let mgr = BddManager::new();
    /// let f = mgr.var("A").and(&mgr.var("B").not());
    /// let dot = f.to_dot();
    /// assert!(dot.starts_with("digraph bdd {"));
    /// assert!(dot.contains("\"A\""));
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        let _ = writeln!(out, "  t0 [label=\"0\", shape=box];");
        let _ = writeln!(out, "  t1 [label=\"1\", shape=box];");
        let mut names: HashMap<usize, String> = HashMap::new();
        let mut order: Vec<(String, String, String, String)> = Vec::new();
        self.walk_nodes(&mut |id, var_name, low, high| {
            let name = format!("n{id}");
            names.insert(id, name.clone());
            order.push((name, var_name, low.to_string(), high.to_string()));
        });
        for (name, var, low, high) in order {
            let _ = writeln!(out, "  {name} [label=\"{var}\"];");
            let _ = writeln!(out, "  {name} -> {low} [style=dashed];");
            let _ = writeln!(out, "  {name} -> {high};");
        }
        if self.is_true() {
            let _ = writeln!(out, "  root -> t1; root [shape=point];");
        } else if self.is_false() {
            let _ = writeln!(out, "  root -> t0; root [shape=point];");
        }
        out.push_str("}\n");
        out
    }
}
