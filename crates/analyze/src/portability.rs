//! Cross-profile portability analysis.
//!
//! The cross-profile corpus mode runs every unit under N compiler/OS
//! [`superc_cpp::Profile`]s. Each run produces a **portability slice**
//! ([`portability_slice`]): plain-data [`PortEntry`] rows describing the
//! profile-observable facts of the unit — which tested macros are
//! defined, what presence condition each surviving conditional got, what
//! each declaration looks like, and which error diagnostics exist. Rows
//! carry only strings (canonical condition text, not `Cond` handles), so
//! they cross worker threads like lint [`Record`]s do.
//!
//! [`diff_profiles`] then aligns the slices row-by-row on stable keys and
//! emits one lint record per site whose state is not identical across
//! every profile:
//!
//! * `portability-definedness` — a tested macro defined under some
//!   profiles but not others (`__GNUC__` vs `_MSC_VER`);
//! * `portability-divergent-condition` — a conditional whose BDD
//!   presence condition differs across profiles (a built-in decided the
//!   test differently);
//! * `portability-divergent-decl` — a declaration or error diagnostic
//!   present (or shaped) differently under some profiles.
//!
//! Determinism: slices are built in source order, keys are
//! position-derived, conditions are canonical strings, and the diff
//! walks a sorted key map — nothing depends on worker scheduling, so the
//! rendered output is byte-identical across `--jobs`/cache/fastpath.

use std::collections::BTreeMap;

use superc_cond::CondCtx;
use superc_cpp::Severity;
use superc_lexer::FileId;

use crate::render::{canonical, parse_canonical};
use crate::{AnalysisInput, LintCode, LintLevel, LintOptions, Record};

/// Which portability lint a row feeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortKind {
    /// A tested macro's definedness state.
    Definedness,
    /// A surviving conditional group's presence condition.
    CondSite,
    /// A declaration's rendered type and condition.
    Decl,
    /// An error diagnostic (preprocessor or parse).
    Diag,
}

impl PortKind {
    fn code(self) -> LintCode {
        match self {
            PortKind::Definedness => LintCode::PortabilityDefinedness,
            PortKind::CondSite => LintCode::PortabilityDivergentCondition,
            PortKind::Decl | PortKind::Diag => LintCode::PortabilityDivergentDecl,
        }
    }
}

/// One profile-observable fact about a unit: a state string attached to
/// a stable, position-derived key. Plain data (canonical condition text,
/// no `Cond` handles), so rows cross worker threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortEntry {
    /// Which portability lint this row feeds.
    pub kind: PortKind,
    /// Stable alignment key, unique within one profile's slice.
    pub key: String,
    /// Resolved file name of the anchoring position.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The profile-observable state, compared verbatim across profiles.
    pub state: String,
    /// Canonical presence condition of the fact under this profile.
    pub cond: String,
}

/// Disambiguates repeated base keys (the same header processed twice
/// yields the same positions twice): the first occurrence keeps the base
/// key, later ones get `#1`, `#2`, ... so slices align occurrence by
/// occurrence.
struct KeyMint {
    seen: BTreeMap<String, usize>,
}

impl KeyMint {
    fn new() -> Self {
        KeyMint {
            seen: BTreeMap::new(),
        }
    }

    fn mint(&mut self, base: String) -> String {
        let n = self.seen.entry(base.clone()).or_insert(0);
        let key = if *n == 0 {
            base.clone()
        } else {
            format!("{base}#{n}")
        };
        *n += 1;
        key
    }
}

/// Builds one profile run's portability slice for a unit, in source
/// order. `resolve` maps worker-local [`FileId`]s to file names, exactly
/// as in [`crate::analyze`].
pub fn portability_slice(
    input: &AnalysisInput<'_>,
    resolve: &dyn Fn(FileId) -> Option<String>,
) -> Vec<PortEntry> {
    let name_of = |id: FileId| resolve(id).unwrap_or_else(|| format!("<file {}>", id.0));
    let tru = input.ctx.tru();
    let mut out = Vec::new();

    // Definedness: one row per distinct tested macro name, anchored at
    // its first test site, under the union of all test-site conditions.
    let mut tested: Vec<(&str, superc_lexer::SourcePos, superc_cond::Cond)> = Vec::new();
    for tm in &input.unit.tested_macros {
        match tested.iter_mut().find(|(n, _, _)| *n == &*tm.name) {
            Some((_, _, c)) => *c = c.or(&tm.cond),
            None => tested.push((&tm.name, tm.pos, tm.cond.clone())),
        }
    }
    for (name, pos, sites) in tested {
        let (defined, free) = input.table.defined_cond(name, &tru);
        let state = if free.is_false() && defined.is_true() {
            "always defined".to_string()
        } else if defined.is_false() && free.is_false() {
            "never defined (explicitly undefined or guard)".to_string()
        } else if defined.is_false() {
            "never defined".to_string()
        } else {
            format!(
                "defined when {}; free when {}",
                canonical(&defined),
                canonical(&free)
            )
        };
        out.push(PortEntry {
            kind: PortKind::Definedness,
            key: format!("macro {name}"),
            file: name_of(pos.file),
            line: pos.line,
            col: pos.col,
            state,
            cond: canonical(&sites),
        });
    }

    // Conditional sites: the final branch condition of every surviving
    // group (dead groups carry `false`), keyed by position.
    let mut mint = KeyMint::new();
    for site in &input.unit.cond_sites {
        let file = name_of(site.pos.file);
        let cond = canonical(&site.cond);
        out.push(PortEntry {
            kind: PortKind::CondSite,
            key: mint.mint(format!(
                "conditional at {file}:{}:{}",
                site.pos.line, site.pos.col
            )),
            file,
            line: site.pos.line,
            col: site.pos.col,
            state: cond.clone(),
            cond,
        });
    }

    // Declarations: name, rendered type, and presence condition.
    let mut mint = KeyMint::new();
    if let Some(ast) = input.result.and_then(|r| r.ast.as_ref()) {
        for d in superc_csyntax::declared_names(ast) {
            let pos = d.pos.unwrap_or_default();
            let file = name_of(pos.file);
            let rendered = if d.specifiers.is_empty() {
                format!("{} ({})", d.shape, d.kind)
            } else {
                format!("{} {}", d.specifiers, d.shape)
            };
            let cond = canonical(d.cond.as_ref().unwrap_or(&tru));
            out.push(PortEntry {
                kind: PortKind::Decl,
                key: mint.mint(format!("declaration of {}", d.name)),
                file,
                line: pos.line,
                col: pos.col,
                state: format!("`{rendered}` when {cond}"),
                cond,
            });
        }
    }

    // Error diagnostics: preprocessor errors and parse errors. A unit
    // that errors under one profile but not another is the bluntest
    // portability divergence of all.
    let mut mint = KeyMint::new();
    for d in &input.unit.diagnostics {
        if d.severity != Severity::Error {
            continue;
        }
        let file = name_of(d.pos.file);
        let cond = canonical(&d.cond);
        out.push(PortEntry {
            kind: PortKind::Diag,
            key: mint.mint(format!(
                "diagnostic at {file}:{}:{}: {}",
                d.pos.line, d.pos.col, d.message
            )),
            file,
            line: d.pos.line,
            col: d.pos.col,
            state: cond.clone(),
            cond,
        });
    }
    if let Some(result) = input.result {
        for err in &result.errors {
            let pos = err.pos.unwrap_or_default();
            let file = name_of(pos.file);
            let cond = canonical(&err.cond);
            out.push(PortEntry {
                kind: PortKind::Diag,
                key: mint.mint(format!(
                    "parse error at {file}:{}:{} (got `{}`)",
                    pos.line, pos.col, err.got
                )),
                file,
                line: pos.line,
                col: pos.col,
                state: cond.clone(),
                cond,
            });
        }
    }
    out
}

/// Diffs one unit's per-profile slices into portability lint records.
///
/// `profile_names` and `slices` are parallel, in profile run order. A
/// key absent from some profile's slice compares as `<absent>`. Rows
/// whose state is identical everywhere are portable and emit nothing.
/// Conditions are lifted back into `ctx` via [`parse_canonical`] and
/// ORed across profiles; if any per-profile condition is the
/// non-invertible overflow form, the first present condition string is
/// carried verbatim instead.
pub fn diff_profiles(
    profile_names: &[String],
    slices: &[Vec<PortEntry>],
    opts: &LintOptions,
    ctx: &CondCtx,
) -> Vec<Record> {
    assert_eq!(profile_names.len(), slices.len());
    let n = slices.len();
    let all_profiles = profile_names.join(",");
    let mut by_key: BTreeMap<&str, Vec<Option<&PortEntry>>> = BTreeMap::new();
    for (i, slice) in slices.iter().enumerate() {
        for e in slice {
            by_key.entry(&e.key).or_insert_with(|| vec![None; n])[i] = Some(e);
        }
    }
    let mut out = Vec::new();
    for (key, rows) in by_key {
        let states: Vec<&str> = rows
            .iter()
            .map(|r| r.map(|e| e.state.as_str()).unwrap_or("<absent>"))
            .collect();
        if states.iter().all(|s| *s == states[0]) {
            continue;
        }
        let first = rows
            .iter()
            .flatten()
            .next()
            .expect("some profile has the key");
        let code = first.kind.code();
        let level = opts.level_of(code);
        if level == LintLevel::Allow {
            continue;
        }
        // Partition profiles by state, in run order of first appearance.
        let mut groups: Vec<(&str, Vec<&str>)> = Vec::new();
        for (i, state) in states.iter().enumerate() {
            match groups.iter_mut().find(|(s, _)| s == state) {
                Some((_, ps)) => ps.push(&profile_names[i]),
                None => groups.push((state, vec![&profile_names[i]])),
            }
        }
        let detail = groups
            .iter()
            .map(|(s, ps)| format!("{s} under {{{}}}", ps.join(", ")))
            .collect::<Vec<_>>()
            .join("; ");
        // Union of the per-profile conditions, back in one context.
        let mut union = Some(ctx.fls());
        for e in rows.iter().flatten() {
            union = match (union, parse_canonical(&e.cond, ctx)) {
                (Some(u), Some(c)) => Some(u.or(&c)),
                _ => None,
            };
        }
        let cond = match union {
            Some(u) => canonical(&u),
            None => first.cond.clone(),
        };
        out.push(Record {
            code: code.as_str(),
            level: level.as_str(),
            file: first.file.clone(),
            line: first.line,
            col: first.col,
            cond,
            message: format!("{key} differs across profiles: {detail}"),
            profiles: all_profiles.clone(),
        });
    }
    out
}

/// The final deterministic order for merged cross-profile reports:
/// `(file, line, col, code, message, cond, profiles)`.
pub fn sort_records(records: &mut [Record]) {
    records.sort_by(|a, b| {
        (
            &a.file,
            a.line,
            a.col,
            a.code,
            &a.message,
            &a.cond,
            &a.profiles,
        )
            .cmp(&(
                &b.file,
                b.line,
                b.col,
                b.code,
                &b.message,
                &b.cond,
                &b.profiles,
            ))
    });
}
