//! Variability-aware lints over SuperC's configuration-preserving
//! pipeline.
//!
//! An ordinary linter sees one preprocessed configuration and is blind to
//! the rest; this engine walks the *whole* configuration space the
//! preprocessor and FMLR parser preserve. Every [`Diagnostic`] therefore
//! carries a **presence condition** — the exact BDD (or SAT formula)
//! describing the configurations in which the problem occurs — alongside
//! a stable lint code, a severity, and a source span.
//!
//! Eight lints ship today:
//!
//! | code | meaning |
//! |---|---|
//! | `dead-branch` | a conditional branch is infeasible under its context |
//! | `config-redecl` | one name declared with different types in overlapping configurations |
//! | `macro-conflict` | a macro redefined with a different body while an older definition is live |
//! | `undef-macro-test` | `#if`/`#ifdef` tests a macro never defined in the unit (typo detector) |
//! | `partial-parse` | a subparser died: the unit does not parse in some configurations |
//! | `portability-definedness` | a tested macro's definedness differs across compiler/OS profiles |
//! | `portability-divergent-condition` | a conditional's presence condition differs across profiles |
//! | `portability-divergent-decl` | a declaration or diagnostic exists under some profiles only |
//!
//! The three `portability-*` lints come from the cross-profile corpus
//! mode (`superc lint --profiles a,b,c`), which runs every unit under N
//! compiler/OS [`superc_cpp::Profile`]s and diffs the per-profile
//! results; see [`portability`].
//!
//! # Determinism
//!
//! `Cond`'s `Display` depends on BDD variable order, which is
//! schedule-dependent under the parallel corpus driver. Diagnostics
//! instead render conditions through [`render::canonical`], which depends
//! only on the boolean function and the sorted support names — so lint
//! output is byte-identical regardless of `--jobs`.

mod lints;
pub mod portability;
pub mod render;
#[cfg(test)]
mod tests;

use std::fmt;

use superc_cond::{Cond, CondCtx};
use superc_cpp::{CompilationUnit, MacroTable};
use superc_fmlr::ParseResult;
use superc_lexer::{FileId, SourcePos};

/// Stable lint identifiers (the `[code]` in rendered diagnostics).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// A conditional branch that can never be included.
    DeadBranch,
    /// A name declared with different types in overlapping configurations.
    ConfigRedecl,
    /// A macro redefined with a different body under intersecting
    /// conditions.
    MacroConflict,
    /// A macro tested by a conditional but never defined or undefined.
    UndefMacroTest,
    /// Configurations in which the unit fails to parse.
    PartialParse,
    /// A tested macro defined under some profiles but not others.
    PortabilityDefinedness,
    /// A conditional whose presence condition differs across profiles.
    PortabilityDivergentCondition,
    /// A declaration or diagnostic present under some profiles only.
    PortabilityDivergentDecl,
}

impl LintCode {
    /// Every lint, in code order.
    pub const ALL: [LintCode; 8] = [
        LintCode::DeadBranch,
        LintCode::ConfigRedecl,
        LintCode::MacroConflict,
        LintCode::UndefMacroTest,
        LintCode::PartialParse,
        LintCode::PortabilityDefinedness,
        LintCode::PortabilityDivergentCondition,
        LintCode::PortabilityDivergentDecl,
    ];

    /// The stable kebab-case code.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::DeadBranch => "dead-branch",
            LintCode::ConfigRedecl => "config-redecl",
            LintCode::MacroConflict => "macro-conflict",
            LintCode::UndefMacroTest => "undef-macro-test",
            LintCode::PartialParse => "partial-parse",
            LintCode::PortabilityDefinedness => "portability-definedness",
            LintCode::PortabilityDivergentCondition => "portability-divergent-condition",
            LintCode::PortabilityDivergentDecl => "portability-divergent-decl",
        }
    }

    /// Parses a kebab-case code back to a lint.
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL.into_iter().find(|c| c.as_str() == s)
    }

    fn index(self) -> usize {
        LintCode::ALL
            .iter()
            .position(|c| *c == self)
            .expect("every code is in ALL")
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What to do with a lint's findings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LintLevel {
    /// Suppress entirely (the lint does not even run).
    Allow,
    /// Report, exit successfully.
    Warn,
    /// Report, and make `superc lint` exit nonzero.
    Deny,
}

impl LintLevel {
    /// Lowercase name, used in JSON output and flags.
    pub fn as_str(self) -> &'static str {
        match self {
            LintLevel::Allow => "allow",
            LintLevel::Warn => "warn",
            LintLevel::Deny => "deny",
        }
    }
}

/// Which lints run, and how loudly.
#[derive(Clone, Debug)]
pub struct LintOptions {
    levels: [LintLevel; LintCode::ALL.len()],
    /// Name prefixes exempt from `undef-macro-test`: configuration
    /// variables (`CONFIG_*`) and compiler/platform macros (`__*`) are
    /// routinely tested without an in-unit definition.
    pub config_prefixes: Vec<String>,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            levels: [LintLevel::Warn; LintCode::ALL.len()],
            config_prefixes: vec!["CONFIG_".to_string(), "__".to_string()],
        }
    }
}

impl LintOptions {
    /// The level `code` runs at.
    pub fn level_of(&self, code: LintCode) -> LintLevel {
        self.levels[code.index()]
    }

    /// Sets one lint's level.
    pub fn set_level(&mut self, code: LintCode, level: LintLevel) -> &mut Self {
        self.levels[code.index()] = level;
        self
    }

    /// Sets every lint's level.
    pub fn set_all(&mut self, level: LintLevel) -> &mut Self {
        self.levels = [level; LintCode::ALL.len()];
        self
    }
}

/// One lint finding, with its exact presence condition.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Resolved level ([`LintLevel::Warn`] or [`LintLevel::Deny`]).
    pub level: LintLevel,
    /// Resolved file name of `pos` (its `FileId` is worker-local and
    /// meaningless across a corpus, so the name is stamped here).
    pub file: String,
    /// Source span anchor.
    pub pos: SourcePos,
    /// Exact presence condition of the problem.
    pub cond: Cond,
    /// Canonical, schedule-independent rendering of `cond`.
    pub cond_text: String,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Flattens to a thread-portable [`Record`] (drops the `Cond`, which
    /// holds non-`Send` context handles).
    pub fn record(&self) -> Record {
        Record {
            code: self.code.as_str(),
            level: self.level.as_str(),
            file: self.file.clone(),
            line: self.pos.line,
            col: self.pos.col,
            cond: self.cond_text.clone(),
            message: self.message.clone(),
            profiles: String::new(),
        }
    }
}

/// A plain-data diagnostic: what the parallel corpus driver carries
/// across worker threads and what the renderers consume.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Stable lint code.
    pub code: &'static str,
    /// `"warn"` or `"deny"`.
    pub level: &'static str,
    /// Resolved file name.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Canonical presence-condition text.
    pub cond: String,
    /// Human-readable description.
    pub message: String,
    /// Comma-joined profile names the diagnostic applies to, in profile
    /// run order — empty outside cross-profile mode, and the renderers
    /// omit it then, keeping single-profile output byte-compatible.
    pub profiles: String,
}

/// Everything one unit's analysis needs, borrowed from the pipeline
/// right after `preprocess` + `parse` (the macro table is per-unit state
/// on the preprocessor and must be read before the next unit resets it).
pub struct AnalysisInput<'a> {
    /// The preprocessed unit (elements, dead branches, tested macros).
    pub unit: &'a CompilationUnit,
    /// The parse result, if parsing ran.
    pub result: Option<&'a ParseResult>,
    /// The unit's final conditional macro table.
    pub table: &'a MacroTable,
    /// The condition context conditions live in.
    pub ctx: &'a CondCtx,
}

/// Runs every enabled lint over one unit.
///
/// `resolve` maps the preprocessor's worker-local [`FileId`]s to file
/// names (see `Preprocessor::file_name`). Diagnostics come back sorted by
/// `(file, line, col, code, message)` — a deterministic order that does
/// not depend on lint execution order or worker scheduling.
pub fn analyze(
    input: &AnalysisInput<'_>,
    opts: &LintOptions,
    resolve: &dyn Fn(FileId) -> Option<String>,
) -> Vec<Diagnostic> {
    let mut raw: Vec<(LintCode, SourcePos, Cond, String)> = Vec::new();
    let on = |code: LintCode| opts.level_of(code) != LintLevel::Allow;
    if on(LintCode::DeadBranch) {
        lints::dead_branches(input, &mut raw);
    }
    if on(LintCode::MacroConflict) {
        lints::macro_conflicts(input, resolve, &mut raw);
    }
    if on(LintCode::UndefMacroTest) {
        lints::undef_macro_tests(input, opts, &mut raw);
    }
    if on(LintCode::ConfigRedecl) {
        lints::config_redecls(input, &mut raw);
    }
    if on(LintCode::PartialParse) {
        lints::partial_parses(input, &mut raw);
    }
    let mut out: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|(_, _, cond, _)| !cond.is_false())
        .map(|(code, pos, cond, message)| Diagnostic {
            code,
            level: opts.level_of(code),
            file: resolve(pos.file).unwrap_or_else(|| format!("<file {}>", pos.file.0)),
            pos,
            cond_text: render::canonical(&cond),
            cond,
            message,
        })
        .collect();
    out.sort_by(|a, b| {
        (&a.file, a.pos.line, a.pos.col, a.code.as_str(), &a.message).cmp(&(
            &b.file,
            b.pos.line,
            b.pos.col,
            b.code.as_str(),
            &b.message,
        ))
    });
    out
}
