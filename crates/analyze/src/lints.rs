//! The individual lint passes. Each pushes `(code, pos, cond, message)`
//! tuples; `lib.rs` stamps levels, file names, and canonical condition
//! text, then sorts.

use std::rc::Rc;

use superc_cond::Cond;
use superc_csyntax::declared_names;
use superc_lexer::{FileId, SourcePos};

use crate::{AnalysisInput, LintCode, LintOptions};

type Raw = Vec<(LintCode, SourcePos, Cond, String)>;

/// `dead-branch`: conditional groups the preprocessor trimmed as
/// infeasible. Chains containing an identifier-free test (`#if 0`,
/// `#if 1 … #else`) are deliberate toggles and exempt.
pub(crate) fn dead_branches(input: &AnalysisInput<'_>, out: &mut Raw) {
    for db in &input.unit.dead_branches {
        if db.chain_constant {
            continue;
        }
        out.push((
            LintCode::DeadBranch,
            db.pos,
            db.context.clone(),
            "branch can never be included: its condition is infeasible under the \
             enclosing context and earlier branches"
                .to_string(),
        ));
    }
}

/// `macro-conflict`: a `#define` whose body differs from a still-live
/// earlier definition in overlapping configurations.
pub(crate) fn macro_conflicts(
    input: &AnalysisInput<'_>,
    resolve: &dyn Fn(FileId) -> Option<String>,
    out: &mut Raw,
) {
    for mc in input.table.conflicts() {
        let prev = match mc.prev_pos {
            Some(p) => format!(
                "{}:{}:{}",
                resolve(p.file).unwrap_or_else(|| format!("<file {}>", p.file.0)),
                p.line,
                p.col
            ),
            None => "a built-in or command-line definition".to_string(),
        };
        out.push((
            LintCode::MacroConflict,
            mc.pos,
            mc.cond.clone(),
            format!(
                "macro {} redefined with a different body while the definition from {} is still live",
                mc.name, prev
            ),
        ));
    }
}

/// `undef-macro-test`: a name tested by `#if`/`#ifdef`/`#ifndef` but
/// never defined or undefined anywhere in the unit — a likely typo.
/// Configuration variables and compiler macros (`opts.config_prefixes`)
/// are exempt; built-ins and command-line defines sit in the macro table
/// and are skipped naturally.
pub(crate) fn undef_macro_tests(input: &AnalysisInput<'_>, opts: &LintOptions, out: &mut Raw) {
    let mut seen: Vec<(Rc<str>, SourcePos, Cond)> = Vec::new();
    for tm in &input.unit.tested_macros {
        if opts
            .config_prefixes
            .iter()
            .any(|p| tm.name.starts_with(p.as_str()))
        {
            continue;
        }
        if input.table.mentioned(&tm.name) {
            continue;
        }
        match seen.iter_mut().find(|(n, _, _)| *n == tm.name) {
            // Report once per name, at the first test site, under the
            // union of all test-site conditions.
            Some((_, _, c)) => *c = c.or(&tm.cond),
            None => seen.push((tm.name.clone(), tm.pos, tm.cond.clone())),
        }
    }
    for (name, pos, cond) in seen {
        out.push((
            LintCode::UndefMacroTest,
            pos,
            cond,
            format!("macro {name} is tested but never defined or undefined in this unit (typo?)"),
        ));
    }
}

/// `config-redecl`: the same name declared with different types in
/// overlapping configurations — the class of bug an ordinary compiler
/// only sees in whichever configuration it was handed.
pub(crate) fn config_redecls(input: &AnalysisInput<'_>, out: &mut Raw) {
    let Some(result) = input.result else { return };
    let Some(ast) = &result.ast else { return };
    let names = declared_names(ast);
    let tru = input.ctx.tru();
    let mut groups: Vec<(Rc<str>, Vec<usize>)> = Vec::new();
    for (i, d) in names.iter().enumerate() {
        match groups.iter_mut().find(|(n, _)| *n == d.name) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((d.name.clone(), vec![i])),
        }
    }
    for (name, idxs) in groups {
        for a in 0..idxs.len() {
            for b in a + 1..idxs.len() {
                let (da, db) = (&names[idxs[a]], &names[idxs[b]]);
                if da.specifiers == db.specifiers && da.shape == db.shape {
                    continue; // identical redeclaration: legal C
                }
                let ca = da.cond.as_ref().unwrap_or(&tru);
                let cb = db.cond.as_ref().unwrap_or(&tru);
                let overlap = ca.and(cb);
                if overlap.is_false() {
                    continue;
                }
                let render = |d: &superc_csyntax::DeclaredName| {
                    if d.specifiers.is_empty() {
                        format!("{} ({})", d.shape, d.kind)
                    } else {
                        format!("{} {}", d.specifiers, d.shape)
                    }
                };
                let pos = db.pos.or(da.pos).unwrap_or_default();
                out.push((
                    LintCode::ConfigRedecl,
                    pos,
                    overlap,
                    format!(
                        "{} declared as `{}` and as `{}` in overlapping configurations",
                        name,
                        render(da),
                        render(db)
                    ),
                ));
            }
        }
    }
}

/// `partial-parse`: configurations in which a subparser died. The parser
/// already attaches the exact presence condition to each error; the lint
/// surfaces it as a structured diagnostic.
pub(crate) fn partial_parses(input: &AnalysisInput<'_>, out: &mut Raw) {
    let Some(result) = input.result else { return };
    for err in &result.errors {
        let detail = if err.message.is_empty() {
            String::new()
        } else {
            format!(": {}", err.message)
        };
        out.push((
            LintCode::PartialParse,
            err.pos.unwrap_or_default(),
            err.cond.clone(),
            format!(
                "unit fails to parse in these configurations (got `{}`){}",
                err.got, detail
            ),
        ));
    }
}
