//! Deterministic rendering: canonical presence-condition text, and the
//! text/JSON diagnostic formats used by `superc lint`.
//!
//! `Cond`'s own `Display` walks the backing BDD, whose variable order
//! depends on condition-creation order — schedule-dependent under the
//! parallel corpus driver. [`canonical`] instead rebuilds a disjoint
//! sum-of-products cover from the boolean function itself, branching on
//! the *sorted* support names, so equal functions always render to equal
//! strings no matter which worker built them.

use superc_cond::{Cond, CondCtx};

use crate::Record;

/// Support-size cap: beyond this, enumeration could blow up and the
/// rendering falls back to listing the support.
const MAX_VARS: usize = 12;
/// Term cap for the fallback, keeping pathological conditions readable.
const MAX_TERMS: usize = 24;

/// Renders `cond` as a canonical formula over `defined(...)` variables:
/// disjoint conjunctions joined by ` || `, literals ordered by sorted
/// variable name (`defined(A) && !defined(B) || !defined(A)`). `true` and
/// `false` render as themselves. Conditions with more than [`MAX_VARS`]
/// support variables (or more than [`MAX_TERMS`] terms) render as a
/// deterministic `<condition over ...>` fallback.
pub fn canonical(cond: &Cond) -> String {
    if cond.is_false() {
        return "false".to_string();
    }
    if cond.is_true() {
        return "true".to_string();
    }
    let names = cond.support_names(); // sorted + deduped
    if names.len() > MAX_VARS {
        return format!("<condition over {}>", names.join(", "));
    }
    let mut terms = Vec::new();
    let mut lits = Vec::new();
    let prefix = cond.ctx().tru();
    if enumerate(cond, &names, 0, &prefix, &mut lits, &mut terms) {
        terms.join(" || ")
    } else {
        format!("<condition over {}>", names.join(", "))
    }
}

/// Depth-first cover enumeration: extend the literal prefix variable by
/// variable; emit a term as soon as the prefix implies the function,
/// prune as soon as it contradicts it. Returns `false` on term overflow.
fn enumerate(
    f: &Cond,
    names: &[String],
    i: usize,
    prefix: &Cond,
    lits: &mut Vec<String>,
    terms: &mut Vec<String>,
) -> bool {
    if terms.len() > MAX_TERMS {
        return false;
    }
    if prefix.and(f).is_false() {
        return true;
    }
    if prefix.implies(f) {
        terms.push(if lits.is_empty() {
            "true".to_string()
        } else {
            lits.join(" && ")
        });
        return true;
    }
    if i >= names.len() {
        // Unreachable: a full assignment of the support makes `f`
        // constant, so one of the branches above must have taken it.
        return true;
    }
    let v = f.ctx().var(&names[i]);
    for positive in [true, false] {
        let next = if positive {
            prefix.and(&v)
        } else {
            prefix.and_not(&v)
        };
        lits.push(if positive {
            names[i].clone()
        } else {
            format!("!{}", names[i])
        });
        let ok = enumerate(f, names, i + 1, &next, lits, terms);
        lits.pop();
        if !ok {
            return false;
        }
    }
    true
}

/// Parses a [`canonical`] rendering back into a condition in `ctx`.
///
/// Accepts exactly the grammar `canonical` emits: `true`, `false`, or
/// disjoint terms joined by ` || ` whose literals are joined by ` && `
/// (each a variable name, optionally `!`-negated). Returns `None` for the
/// `<condition over ...>` overflow fallback, which is not invertible.
///
/// This is how the cross-profile differ lifts canonical strings — the
/// only condition form that crosses worker threads — back into one
/// context to OR per-profile conditions together.
pub fn parse_canonical(s: &str, ctx: &CondCtx) -> Option<Cond> {
    match s {
        "true" => return Some(ctx.tru()),
        "false" => return Some(ctx.fls()),
        _ if s.starts_with('<') => return None,
        _ => {}
    }
    let mut result = ctx.fls();
    for term in s.split(" || ") {
        let mut t = ctx.tru();
        for lit in term.split(" && ") {
            let (name, neg) = match lit.strip_prefix('!') {
                Some(rest) => (rest, true),
                None => (lit, false),
            };
            if name.is_empty() {
                return None;
            }
            let v = ctx.var(name);
            t = if neg { t.and_not(&v) } else { t.and(&v) };
        }
        result = result.or(&t);
    }
    Some(result)
}

/// Renders records in compiler style, one line each:
/// `file:line:col: warning[code]: message [when COND]`, with a trailing
/// ` [profiles {...}]` in cross-profile mode.
pub fn render_text(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        let sev = if r.level == "deny" {
            "error"
        } else {
            "warning"
        };
        out.push_str(&format!(
            "{}:{}:{}: {}[{}]: {} [when {}]",
            r.file, r.line, r.col, sev, r.code, r.message, r.cond
        ));
        if !r.profiles.is_empty() {
            out.push_str(&format!(" [profiles {{{}}}]", r.profiles));
        }
        out.push('\n');
    }
    out
}

/// Renders records as deterministic JSON (stable key order, sorted
/// input): byte-identical across `--jobs` settings.
pub fn render_json(records: &[Record]) -> String {
    let mut out = String::from("{\"diagnostics\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"code\":{},\"level\":{},\"file\":{},\"line\":{},\"col\":{},\"cond\":{},\"message\":{}",
            json_str(r.code),
            json_str(r.level),
            json_str(&r.file),
            r.line,
            r.col,
            json_str(&r.cond),
            json_str(&r.message)
        ));
        if !r.profiles.is_empty() {
            out.push_str(&format!(",\"profiles\":{}", json_str(&r.profiles)));
        }
        out.push('}');
    }
    let deny = records.iter().filter(|r| r.level == "deny").count();
    out.push_str(&format!(
        "],\"count\":{},\"deny\":{}}}\n",
        records.len(),
        deny
    ));
    out
}

/// Renders records as a SARIF 2.1.0 log (`superc lint --format sarif`)
/// for CI and code-review UIs. One run, driver `superc`; `rules` lists
/// the distinct ruleIds present (sorted); each result maps `deny` to
/// SARIF `error` and `warn` to `warning`, and carries the canonical
/// presence condition — plus the profile set in cross-profile mode — in
/// its `properties` bag. Deterministic: stable key order over sorted
/// input, so the output inherits the byte-identity contract.
pub fn render_sarif(records: &[Record]) -> String {
    let mut rule_ids: Vec<&str> = records.iter().map(|r| r.code).collect();
    rule_ids.sort_unstable();
    rule_ids.dedup();
    let rules = rule_ids
        .iter()
        .map(|id| format!("{{\"id\":{}}}", json_str(id)))
        .collect::<Vec<_>>()
        .join(",");
    let mut results = String::new();
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        let level = if r.level == "deny" {
            "error"
        } else {
            "warning"
        };
        let mut props = format!("\"cond\":{}", json_str(&r.cond));
        if !r.profiles.is_empty() {
            props.push_str(&format!(",\"profiles\":{}", json_str(&r.profiles)));
        }
        results.push_str(&format!(
            "{{\"ruleId\":{},\"level\":{},\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{}}},\
             \"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}],\
             \"properties\":{{{}}}}}",
            json_str(r.code),
            json_str(level),
            json_str(&r.message),
            json_str(&r.file),
            r.line.max(1),
            r.col.max(1),
            props
        ));
    }
    format!(
        "{{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\
         \"version\":\"2.1.0\",\
         \"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"superc\",\"rules\":[{rules}]}}}},\
         \"results\":[{results}]}}]}}\n"
    )
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
