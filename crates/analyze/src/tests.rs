use superc_cond::{Cond, CondBackend, CondCtx};
use superc_cpp::{MemFs, PpOptions, Preprocessor, Profile};
use superc_csyntax::parse_unit;
use superc_fmlr::ParserConfig;

use crate::render::canonical;
use crate::{analyze, AnalysisInput, Diagnostic, LintCode, LintLevel, LintOptions};

fn run_with(files: &[(&str, &str)], opts: &LintOptions) -> (Vec<Diagnostic>, CondCtx) {
    let mut fs = MemFs::new();
    for (p, c) in files {
        fs.add(p, c);
    }
    let ctx = CondCtx::new(CondBackend::Bdd);
    let popts = PpOptions {
        profile: Profile::bare(),
        ..PpOptions::default()
    };
    let mut pp = Preprocessor::new(ctx.clone(), popts, fs);
    let unit = pp.preprocess("main.c").expect("preprocess");
    let result = parse_unit(&unit, &ctx, ParserConfig::full());
    let input = AnalysisInput {
        unit: &unit,
        result: Some(&result),
        table: pp.table(),
        ctx: &ctx,
    };
    let diags = analyze(&input, opts, &|id| pp.file_name(id).map(str::to_string));
    (diags, ctx)
}

fn run(src: &str) -> (Vec<Diagnostic>, CondCtx) {
    run_with(&[("main.c", src)], &LintOptions::default())
}

fn only(diags: &[Diagnostic], code: LintCode) -> Vec<Diagnostic> {
    diags.iter().filter(|d| d.code == code).cloned().collect()
}

fn assert_pc(d: &Diagnostic, expected: &Cond) {
    assert!(
        d.cond.semantically_equal(expected),
        "expected PC {expected} for {}, got {} ({})",
        d.code,
        d.cond,
        d.cond_text
    );
}

// ---------------------------------------------------------------------
// dead-branch
// ---------------------------------------------------------------------

#[test]
fn dead_branch_under_contradictory_nesting() {
    let (diags, ctx) = run("#ifdef CONFIG_A\n#ifndef CONFIG_A\nint dead;\n#endif\n#endif\n");
    let dead = only(&diags, LintCode::DeadBranch);
    assert_eq!(dead.len(), 1, "{diags:?}");
    assert_pc(&dead[0], &ctx.var("defined(CONFIG_A)"));
    assert_eq!(dead[0].pos.line, 2);
    assert_eq!(dead[0].file, "main.c");
}

#[test]
fn dead_branch_when_earlier_branches_cover_everything() {
    let src = "#ifdef CONFIG_A\nint a;\n#elif !defined(CONFIG_A)\nint b;\n#else\nint c;\n#endif\n";
    let (diags, ctx) = run(src);
    let dead = only(&diags, LintCode::DeadBranch);
    assert_eq!(dead.len(), 1, "{diags:?}");
    assert_eq!(dead[0].pos.line, 5);
    assert_pc(&dead[0], &ctx.tru());
}

#[test]
fn constant_toggles_are_exempt() {
    let (diags, _) = run("#if 0\nint disabled;\n#endif\n#if 1\nint on;\n#else\nint off;\n#endif\n");
    assert!(only(&diags, LintCode::DeadBranch).is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------
// macro-conflict
// ---------------------------------------------------------------------

#[test]
fn macro_conflict_reports_overlap() {
    let src = "\
#ifdef CONFIG_A
#define NBYTES 1
#endif
#ifdef CONFIG_B
#define NBYTES 2
#endif
int x;
";
    let (diags, ctx) = run(src);
    let conflicts = only(&diags, LintCode::MacroConflict);
    assert_eq!(conflicts.len(), 1, "{diags:?}");
    let both = ctx
        .var("defined(CONFIG_A)")
        .and(&ctx.var("defined(CONFIG_B)"));
    assert_pc(&conflicts[0], &both);
    assert_eq!(conflicts[0].pos.line, 5);
    assert!(conflicts[0].message.contains("NBYTES"));
    assert!(conflicts[0].message.contains("main.c:2:1"));
}

#[test]
fn benign_redefinitions_do_not_conflict() {
    // Identical body, disjoint conditions, and define-after-undef are all
    // legal patterns.
    let src = "\
#define SAME 1
#define SAME 1
#ifdef CONFIG_A
#define DISJOINT 1
#else
#define DISJOINT 2
#endif
#define GONE 1
#undef GONE
#define GONE 2
int x;
";
    let (diags, _) = run(src);
    assert!(
        only(&diags, LintCode::MacroConflict).is_empty(),
        "{diags:?}"
    );
}

// ---------------------------------------------------------------------
// undef-macro-test
// ---------------------------------------------------------------------

#[test]
fn undefined_macro_tests_are_flagged_once() {
    let src = "\
#ifdef TYPO_MACRO
int a;
#endif
#ifdef TYPO_MACRO
int b;
#endif
int x;
";
    let (diags, ctx) = run(src);
    let undef = only(&diags, LintCode::UndefMacroTest);
    assert_eq!(undef.len(), 1, "{diags:?}");
    assert_pc(&undef[0], &ctx.tru());
    assert!(undef[0].message.contains("TYPO_MACRO"));
    assert_eq!(undef[0].pos.line, 1);
}

#[test]
fn guards_config_vars_and_defined_names_are_not_flagged() {
    let main = "\
#include \"guarded.h\"
#ifdef CONFIG_WHATEVER
int a;
#endif
#if defined(KNOWN) && KNOWN > 1
int b;
#endif
int x;
";
    let hdr = "#ifndef GUARDED_H\n#define GUARDED_H\n#define KNOWN 2\n#endif\n";
    let (diags, _) = run_with(
        &[("main.c", main), ("guarded.h", hdr)],
        &LintOptions::default(),
    );
    assert!(
        only(&diags, LintCode::UndefMacroTest).is_empty(),
        "{diags:?}"
    );
}

#[test]
fn expression_test_identifiers_are_checked() {
    let (diags, ctx) = run("#ifdef CONFIG_A\n#if MISPELED\nint a;\n#endif\n#endif\nint x;\n");
    let undef = only(&diags, LintCode::UndefMacroTest);
    assert_eq!(undef.len(), 1, "{diags:?}");
    assert!(undef[0].message.contains("MISPELED"));
    // The test only runs where the outer conditional admits it.
    assert_pc(&undef[0], &ctx.var("defined(CONFIG_A)"));
}

// ---------------------------------------------------------------------
// config-redecl
// ---------------------------------------------------------------------

#[test]
fn conflicting_types_in_overlapping_configs() {
    let src = "\
#ifdef CONFIG_A
int v;
#endif
#ifdef CONFIG_B
long v;
#endif
";
    let (diags, ctx) = run(src);
    let redecl = only(&diags, LintCode::ConfigRedecl);
    assert_eq!(redecl.len(), 1, "{diags:?}");
    let both = ctx
        .var("defined(CONFIG_A)")
        .and(&ctx.var("defined(CONFIG_B)"));
    assert_pc(&redecl[0], &both);
    assert!(redecl[0].message.contains('v'));
}

#[test]
fn disjoint_or_identical_redeclarations_are_fine() {
    let src = "\
#ifdef CONFIG_A
int v;
#else
long v;
#endif
int w;
int w;
";
    let (diags, _) = run(src);
    assert!(only(&diags, LintCode::ConfigRedecl).is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------
// partial-parse
// ---------------------------------------------------------------------

#[test]
fn parse_failures_carry_their_condition() {
    let src = "\
#ifdef CONFIG_BROKEN
int x = ;
#else
int x = 1;
#endif
";
    let (diags, ctx) = run(src);
    let partial = only(&diags, LintCode::PartialParse);
    assert_eq!(partial.len(), 1, "{diags:?}");
    assert_pc(&partial[0], &ctx.var("defined(CONFIG_BROKEN)"));
}

// ---------------------------------------------------------------------
// options, cleanliness, rendering
// ---------------------------------------------------------------------

#[test]
fn clean_code_produces_no_diagnostics() {
    let src = "\
#ifdef CONFIG_A
int a;
#else
long b;
#endif
int run(void) { return 0; }
";
    let (diags, _) = run(src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn allow_suppresses_and_deny_escalates() {
    let src = "#ifdef TYPO_ONE\nint a;\n#endif\nint x;\n";
    let mut opts = LintOptions::default();
    opts.set_all(LintLevel::Allow);
    let (diags, _) = run_with(&[("main.c", src)], &opts);
    assert!(diags.is_empty(), "{diags:?}");

    let mut opts = LintOptions::default();
    opts.set_level(LintCode::UndefMacroTest, LintLevel::Deny);
    let (diags, _) = run_with(&[("main.c", src)], &opts);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].level, LintLevel::Deny);
    assert_eq!(diags[0].record().level, "deny");
}

#[test]
fn canonical_rendering_is_function_determined() {
    let ctx = CondCtx::new(CondBackend::Bdd);
    let a = ctx.var("defined(A)");
    let b = ctx.var("defined(B)");
    assert_eq!(canonical(&ctx.tru()), "true");
    assert_eq!(canonical(&ctx.fls()), "false");
    assert_eq!(canonical(&a.and(&b.not())), "defined(A) && !defined(B)");
    assert_eq!(
        canonical(&a.or(&b)),
        "defined(A) || !defined(A) && defined(B)"
    );
    // Creation order of the variables must not matter: rebuild with the
    // opposite order and compare.
    let ctx2 = CondCtx::new(CondBackend::Bdd);
    let b2 = ctx2.var("defined(B)");
    let a2 = ctx2.var("defined(A)");
    assert_eq!(canonical(&a2.or(&b2)), canonical(&a.or(&b)));
    assert_eq!(canonical(&a2.and(&b2.not())), canonical(&a.and(&b.not())));
}

#[test]
fn lint_codes_round_trip() {
    for code in LintCode::ALL {
        assert_eq!(LintCode::parse(code.as_str()), Some(code));
    }
    assert_eq!(LintCode::parse("nope"), None);
}
