//! The C grammar: C99 plus the gcc extensions SuperC supports (§5).
//!
//! Shaped after the classic ANSI C LALR grammar (Roskind/Degener lineage)
//! with the typedef-name terminal supplied by the context plug-in.
//! Annotations follow §5.1: `passthrough` on the precedence tower, `list`
//! on left-recursive repetitions, `action` on the empty scope helpers
//! (`layout` is available but unused here: every token is kept so ASTs
//! unparse losslessly per configuration), and `complete` on the
//! constructs where subparsers may merge — declarations, definitions,
//! statements, expressions, plus members of commonly configured lists
//! (parameters, struct members, initializer members, enumerators).
//!
//! Two classic shift/reduce conflicts are accepted and resolved as shift,
//! both with the correct C semantics: the dangling `else`, and
//! `IDENTIFIER ':'` as a label at statement head.

use std::sync::{Arc, OnceLock};

use superc_grammar::{Grammar, GrammarBuilder};

use crate::context::CtxTables;
use crate::seed::CSeed;

/// The process-wide immutable parse artifacts for C: the grammar (LALR
/// action/goto tables behind an `Arc`), the classification seed tables,
/// and the context plug-in's production tables.
///
/// Everything here is a pure function of the grammar text, so it is
/// built exactly once per process and shared by reference across every
/// worker thread; only the mutable layer (BDD manager, interner, macro
/// and symbol tables) is per-worker.
pub struct CArtifacts {
    /// The C grammar; clone (or [`Grammar::share`]) for a new handle to
    /// the same tables.
    pub grammar: Grammar,
    /// Keyword/punctuator → terminal classification tables.
    pub seed: CSeed,
    /// The typedef context plug-in's production-kind tables.
    pub ctx_tables: Arc<CtxTables>,
}

/// The shared C parse artifacts (built once per process).
pub fn c_artifacts() -> &'static CArtifacts {
    static A: OnceLock<CArtifacts> = OnceLock::new();
    A.get_or_init(|| {
        let grammar = build().expect("the C grammar builds");
        let seed = CSeed::build(&grammar);
        let ctx_tables = Arc::new(CtxTables::build(&grammar));
        CArtifacts {
            grammar,
            seed,
            ctx_tables,
        }
    })
}

/// The shared C grammar (built once per process).
///
/// See the crate docs for an end-to-end example.
pub fn c_grammar() -> &'static Grammar {
    &c_artifacts().grammar
}

fn build() -> Result<Grammar, superc_grammar::GrammarError> {
    let mut g = GrammarBuilder::new("TranslationUnit");

    g.terminals(&[
        "IDENTIFIER",
        "TYPEDEF_NAME",
        "CONSTANT",
        "STRING_LITERAL",
        // Punctuators.
        "[",
        "]",
        "(",
        ")",
        "{",
        "}",
        ".",
        "->",
        "++",
        "--",
        "&",
        "*",
        "+",
        "-",
        "~",
        "!",
        "/",
        "%",
        "<<",
        ">>",
        "<",
        ">",
        "<=",
        ">=",
        "==",
        "!=",
        "^",
        "|",
        "&&",
        "||",
        "?",
        ":",
        ";",
        "...",
        "=",
        "*=",
        "/=",
        "%=",
        "+=",
        "-=",
        "<<=",
        ">>=",
        "&=",
        "^=",
        "|=",
        ",",
        "@",
        // Keywords.
        "auto",
        "break",
        "case",
        "char",
        "const",
        "continue",
        "default",
        "do",
        "double",
        "else",
        "enum",
        "extern",
        "float",
        "for",
        "goto",
        "if",
        "inline",
        "int",
        "long",
        "register",
        "restrict",
        "return",
        "short",
        "signed",
        "sizeof",
        "static",
        "struct",
        "switch",
        "typedef",
        "union",
        "unsigned",
        "void",
        "volatile",
        "while",
        "_Bool",
        "_Complex",
        // gcc extensions.
        "asm",
        "typeof",
        "__attribute__",
        "__extension__",
        "__builtin_va_arg",
        "__builtin_offsetof",
        "alignof",
        "__label__",
    ]);

    // ---- names ---------------------------------------------------------

    // Member/tag/goto-label positions admit typedef names too; reclassify
    // is context-free, so a typedef name used as a member must still parse.
    g.prod("AnyName", &["IDENTIFIER"]).passthrough();
    g.prod("AnyName", &["TYPEDEF_NAME"]).passthrough();

    // Adjacent string literals concatenate.
    g.prod("StringList", &["STRING_LITERAL"]).list();
    g.prod("StringList", &["StringList", "STRING_LITERAL"])
        .list();

    // ---- expressions ----------------------------------------------------

    g.prod("PrimaryExpression", &["IDENTIFIER"]).passthrough();
    g.prod("PrimaryExpression", &["CONSTANT"]).passthrough();
    g.prod("PrimaryExpression", &["StringList"]).passthrough();
    g.prod("PrimaryExpression", &["(", "Expression", ")"]);
    // gcc statement expression.
    g.prod("PrimaryExpression", &["(", "CompoundStatement", ")"]);
    g.prod(
        "PrimaryExpression",
        &[
            "__builtin_va_arg",
            "(",
            "AssignmentExpression",
            ",",
            "TypeName",
            ")",
        ],
    );
    g.prod(
        "PrimaryExpression",
        &[
            "__builtin_offsetof",
            "(",
            "TypeName",
            ",",
            "OffsetofMember",
            ")",
        ],
    );
    g.prod("OffsetofMember", &["AnyName"]).passthrough();
    g.prod("OffsetofMember", &["OffsetofMember", ".", "AnyName"]);
    g.prod(
        "OffsetofMember",
        &["OffsetofMember", "[", "Expression", "]"],
    );

    g.prod("PostfixExpression", &["PrimaryExpression"])
        .passthrough();
    g.prod(
        "PostfixExpression",
        &["PostfixExpression", "[", "Expression", "]"],
    );
    g.prod("PostfixExpression", &["PostfixExpression", "(", ")"]);
    g.prod(
        "PostfixExpression",
        &["PostfixExpression", "(", "ArgumentExpressionList", ")"],
    );
    g.prod("PostfixExpression", &["PostfixExpression", ".", "AnyName"]);
    g.prod("PostfixExpression", &["PostfixExpression", "->", "AnyName"]);
    g.prod("PostfixExpression", &["PostfixExpression", "++"]);
    g.prod("PostfixExpression", &["PostfixExpression", "--"]);
    // C99 compound literals.
    g.prod(
        "PostfixExpression",
        &["(", "TypeName", ")", "{", "InitMembers", "}"],
    );

    g.prod("ArgumentExpressionList", &["AssignmentExpression"])
        .list();
    g.prod(
        "ArgumentExpressionList",
        &["ArgumentExpressionList", ",", "AssignmentExpression"],
    )
    .list();

    g.prod("UnaryExpression", &["PostfixExpression"])
        .passthrough();
    g.prod("UnaryExpression", &["++", "UnaryExpression"]);
    g.prod("UnaryExpression", &["--", "UnaryExpression"]);
    for op in ["&", "*", "+", "-", "~", "!"] {
        g.prod("UnaryExpression", &[op, "CastExpression"]);
    }
    g.prod("UnaryExpression", &["sizeof", "UnaryExpression"]);
    g.prod("UnaryExpression", &["sizeof", "(", "TypeName", ")"]);
    g.prod("UnaryExpression", &["alignof", "UnaryExpression"]);
    g.prod("UnaryExpression", &["alignof", "(", "TypeName", ")"]);
    // gcc: label addresses and __extension__.
    g.prod("UnaryExpression", &["&&", "AnyName"]);
    g.prod("UnaryExpression", &["__extension__", "CastExpression"])
        .passthrough();

    g.prod("CastExpression", &["UnaryExpression"]).passthrough();
    g.prod("CastExpression", &["(", "TypeName", ")", "CastExpression"]);

    let tower: &[(&str, &str, &[&str])] = &[
        (
            "MultiplicativeExpression",
            "CastExpression",
            &["*", "/", "%"],
        ),
        (
            "AdditiveExpression",
            "MultiplicativeExpression",
            &["+", "-"],
        ),
        ("ShiftExpression", "AdditiveExpression", &["<<", ">>"]),
        (
            "RelationalExpression",
            "ShiftExpression",
            &["<", ">", "<=", ">="],
        ),
        ("EqualityExpression", "RelationalExpression", &["==", "!="]),
        ("AndExpression", "EqualityExpression", &["&"]),
        ("ExclusiveOrExpression", "AndExpression", &["^"]),
        ("InclusiveOrExpression", "ExclusiveOrExpression", &["|"]),
        ("LogicalAndExpression", "InclusiveOrExpression", &["&&"]),
        ("LogicalOrExpression", "LogicalAndExpression", &["||"]),
    ];
    for &(nt, lower, ops) in tower {
        g.prod(nt, &[lower]).passthrough();
        for &op in ops {
            g.prod(nt, &[nt, op, lower]);
        }
    }

    g.prod("ConditionalExpression", &["LogicalOrExpression"])
        .passthrough();
    g.prod(
        "ConditionalExpression",
        &[
            "LogicalOrExpression",
            "?",
            "Expression",
            ":",
            "ConditionalExpression",
        ],
    );
    // gcc `a ?: b`.
    g.prod(
        "ConditionalExpression",
        &["LogicalOrExpression", "?", ":", "ConditionalExpression"],
    );

    g.prod("AssignmentExpression", &["ConditionalExpression"])
        .passthrough();
    for op in [
        "=", "*=", "/=", "%=", "+=", "-=", "<<=", ">>=", "&=", "^=", "|=",
    ] {
        g.prod(
            "AssignmentExpression",
            &["UnaryExpression", op, "AssignmentExpression"],
        );
    }

    g.prod("Expression", &["AssignmentExpression"])
        .passthrough();
    g.prod("Expression", &["Expression", ",", "AssignmentExpression"]);

    g.prod("ConstantExpression", &["ConditionalExpression"])
        .passthrough();

    // ---- declarations ---------------------------------------------------

    g.prod("Declaration", &["DeclarationSpecifiers", ";"]);
    g.prod(
        "Declaration",
        &["DeclarationSpecifiers", "InitDeclaratorList", ";"],
    );
    g.prod("Declaration", &["__extension__", "Declaration"])
        .passthrough();

    for spec in [
        "StorageClassSpecifier",
        "TypeSpecifier",
        "TypeQualifier",
        "FunctionSpecifier",
        "AttributeSpecifier",
    ] {
        g.prod("DeclarationSpecifiers", &[spec]).list();
        g.prod("DeclarationSpecifiers", &["DeclarationSpecifiers", spec])
            .list();
    }

    for kw in ["typedef", "extern", "static", "auto", "register"] {
        g.prod("StorageClassSpecifier", &[kw]).passthrough();
    }
    g.prod("FunctionSpecifier", &["inline"]).passthrough();

    for kw in [
        "void", "char", "short", "int", "long", "float", "double", "signed", "unsigned", "_Bool",
        "_Complex",
    ] {
        g.prod("TypeSpecifier", &[kw]).passthrough();
    }
    g.prod("TypeSpecifier", &["StructOrUnionSpecifier"])
        .passthrough();
    g.prod("TypeSpecifier", &["EnumSpecifier"]).passthrough();
    g.prod("TypeSpecifier", &["TYPEDEF_NAME"]).passthrough();
    g.prod("TypeSpecifier", &["TypeofSpecifier"]).passthrough();

    g.prod("TypeofSpecifier", &["typeof", "(", "Expression", ")"]);
    g.prod("TypeofSpecifier", &["typeof", "(", "TypeName", ")"]);

    for kw in ["const", "volatile", "restrict"] {
        g.prod("TypeQualifier", &[kw]).passthrough();
    }

    // gcc attributes: `__attribute__((...))` with loosely structured
    // balanced contents.
    g.prod(
        "AttributeSpecifier",
        &["__attribute__", "(", "(", "AttributeList", ")", ")"],
    );
    g.prod("AttributeList", &["Attribute"]).list();
    g.prod("AttributeList", &["AttributeList", ",", "Attribute"])
        .list();
    g.prod("Attribute", &[]);
    g.prod("Attribute", &["AnyWord"]);
    g.prod("Attribute", &["AnyWord", "(", ")"]);
    g.prod(
        "Attribute",
        &["AnyWord", "(", "ArgumentExpressionList", ")"],
    );
    g.prod("AnyWord", &["AnyName"]).passthrough();
    g.prod("AnyWord", &["const"]).passthrough();

    g.prod("AttributeSpecifiers", &["AttributeSpecifier"])
        .list();
    g.prod(
        "AttributeSpecifiers",
        &["AttributeSpecifiers", "AttributeSpecifier"],
    )
    .list();

    g.prod("InitDeclaratorList", &["InitDeclarator"]).list();
    g.prod(
        "InitDeclaratorList",
        &["InitDeclaratorList", ",", "InitDeclarator"],
    )
    .list();

    g.prod("InitDeclarator", &["Declarator"]);
    g.prod("InitDeclarator", &["Declarator", "=", "Initializer"]);
    g.prod("InitDeclarator", &["Declarator", "DeclSuffix"]);
    g.prod(
        "InitDeclarator",
        &["Declarator", "DeclSuffix", "=", "Initializer"],
    );
    // Post-declarator asm register specs and attributes.
    g.prod("DeclSuffix", &["AsmSpec"]).passthrough();
    g.prod("DeclSuffix", &["AttributeSpecifiers"]).passthrough();
    g.prod("DeclSuffix", &["AsmSpec", "AttributeSpecifiers"]);

    // ---- struct / union / enum ------------------------------------------

    g.prod(
        "StructOrUnionSpecifier",
        &["StructOrUnion", "{", "StructDeclarationList", "}"],
    );
    g.prod(
        "StructOrUnionSpecifier",
        &[
            "StructOrUnion",
            "AnyName",
            "{",
            "StructDeclarationList",
            "}",
        ],
    );
    g.prod("StructOrUnionSpecifier", &["StructOrUnion", "AnyName"]);
    g.prod("StructOrUnion", &["struct"]).passthrough();
    g.prod("StructOrUnion", &["union"]).passthrough();

    // Nullable for the same merge reason as BlockItemList; also covers
    // gcc's empty struct bodies.
    g.prod("StructDeclarationList", &[]).list();
    g.prod(
        "StructDeclarationList",
        &["StructDeclarationList", "StructDeclaration"],
    )
    .list();

    g.prod(
        "StructDeclaration",
        &["SpecifierQualifierList", "StructDeclaratorList", ";"],
    );
    // gcc: anonymous struct/union members and stray semicolons.
    g.prod("StructDeclaration", &["SpecifierQualifierList", ";"]);
    g.prod("StructDeclaration", &[";"]);
    g.prod("StructDeclaration", &["__extension__", "StructDeclaration"])
        .passthrough();

    for spec in ["TypeSpecifier", "TypeQualifier", "AttributeSpecifier"] {
        g.prod("SpecifierQualifierList", &[spec]).list();
        g.prod("SpecifierQualifierList", &["SpecifierQualifierList", spec])
            .list();
    }

    g.prod("StructDeclaratorList", &["StructDeclarator"]).list();
    g.prod(
        "StructDeclaratorList",
        &["StructDeclaratorList", ",", "StructDeclarator"],
    )
    .list();

    g.prod("StructDeclarator", &["Declarator"]);
    g.prod("StructDeclarator", &[":", "ConstantExpression"]);
    g.prod(
        "StructDeclarator",
        &["Declarator", ":", "ConstantExpression"],
    );
    g.prod("StructDeclarator", &["Declarator", "AttributeSpecifiers"]);
    g.prod(
        "StructDeclarator",
        &[
            "Declarator",
            ":",
            "ConstantExpression",
            "AttributeSpecifiers",
        ],
    );

    g.prod("EnumSpecifier", &["enum", "{", "EnumMembers", "}"]);
    g.prod(
        "EnumSpecifier",
        &["enum", "AnyName", "{", "EnumMembers", "}"],
    );
    g.prod("EnumSpecifier", &["enum", "AnyName"]);

    // Same nullable-prefix phrasing as initializer lists: conditionally
    // present enumerators (`#ifdef`-wrapped `NAME,` members) merge.
    g.prod("EnumMembers", &["EnumPrefix"]).passthrough();
    g.prod("EnumMembers", &["EnumPrefix", "Enumerator"]);
    g.prod("EnumPrefix", &[]).list();
    g.prod("EnumPrefix", &["EnumPrefix", "Enumerator", ","])
        .list();
    g.prod("Enumerator", &["AnyName"]);
    g.prod("Enumerator", &["AnyName", "=", "ConstantExpression"]);

    // ---- declarators ------------------------------------------------------

    g.prod("Declarator", &["Pointer", "DirectDeclarator"]);
    g.prod("Declarator", &["DirectDeclarator"]).passthrough();

    g.prod("DirectDeclarator", &["IDENTIFIER"]);
    g.prod("DirectDeclarator", &["(", "Declarator", ")"]);
    g.prod("DirectDeclarator", &["DirectDeclarator", "[", "]"]);
    g.prod(
        "DirectDeclarator",
        &["DirectDeclarator", "[", "AssignmentExpression", "]"],
    );
    g.prod("DirectDeclarator", &["DirectDeclarator", "[", "*", "]"]);
    g.prod(
        "DirectDeclarator",
        &["DirectDeclarator", "(", "ParameterTypeList", ")"],
    );
    g.prod("DirectDeclarator", &["DirectDeclarator", "(", ")"]);
    g.prod(
        "DirectDeclarator",
        &["DirectDeclarator", "(", "IdentifierList", ")"],
    );

    g.prod("Pointer", &["*"]);
    g.prod("Pointer", &["*", "TypeQualifierList"]);
    g.prod("Pointer", &["*", "Pointer"]);
    g.prod("Pointer", &["*", "TypeQualifierList", "Pointer"]);

    g.prod("TypeQualifierList", &["TypeQualifier"]).list();
    g.prod("TypeQualifierList", &["TypeQualifierList", "TypeQualifier"])
        .list();
    g.prod("TypeQualifierList", &["AttributeSpecifier"]).list();
    g.prod(
        "TypeQualifierList",
        &["TypeQualifierList", "AttributeSpecifier"],
    )
    .list();

    g.prod("ParameterTypeList", &["ParameterList"])
        .passthrough();
    g.prod("ParameterTypeList", &["ParameterList", ",", "..."]);

    g.prod("ParameterList", &["ParameterDeclaration"]).list();
    g.prod(
        "ParameterList",
        &["ParameterList", ",", "ParameterDeclaration"],
    )
    .list();

    g.prod(
        "ParameterDeclaration",
        &["DeclarationSpecifiers", "Declarator"],
    );
    g.prod(
        "ParameterDeclaration",
        &["DeclarationSpecifiers", "AbstractDeclarator"],
    );
    g.prod("ParameterDeclaration", &["DeclarationSpecifiers"]);

    g.prod("IdentifierList", &["IDENTIFIER"]).list();
    g.prod("IdentifierList", &["IdentifierList", ",", "IDENTIFIER"])
        .list();

    g.prod("TypeName", &["SpecifierQualifierList"]);
    g.prod(
        "TypeName",
        &["SpecifierQualifierList", "AbstractDeclarator"],
    );

    g.prod("AbstractDeclarator", &["Pointer"]).passthrough();
    g.prod("AbstractDeclarator", &["DirectAbstractDeclarator"])
        .passthrough();
    g.prod(
        "AbstractDeclarator",
        &["Pointer", "DirectAbstractDeclarator"],
    );

    g.prod(
        "DirectAbstractDeclarator",
        &["(", "AbstractDeclarator", ")"],
    );
    g.prod("DirectAbstractDeclarator", &["[", "]"]);
    g.prod(
        "DirectAbstractDeclarator",
        &["[", "AssignmentExpression", "]"],
    );
    g.prod("DirectAbstractDeclarator", &["[", "*", "]"]);
    g.prod(
        "DirectAbstractDeclarator",
        &["DirectAbstractDeclarator", "[", "]"],
    );
    g.prod(
        "DirectAbstractDeclarator",
        &["DirectAbstractDeclarator", "[", "AssignmentExpression", "]"],
    );
    g.prod("DirectAbstractDeclarator", &["(", ")"]);
    g.prod("DirectAbstractDeclarator", &["(", "ParameterTypeList", ")"]);
    g.prod(
        "DirectAbstractDeclarator",
        &["DirectAbstractDeclarator", "(", ")"],
    );
    g.prod(
        "DirectAbstractDeclarator",
        &["DirectAbstractDeclarator", "(", "ParameterTypeList", ")"],
    );

    // ---- initializers -----------------------------------------------------

    g.prod("Initializer", &["AssignmentExpression"])
        .passthrough();
    g.prod("Initializer", &["{", "InitMembers", "}"]);

    // Initializer lists are phrased as a *nullable prefix of
    // comma-terminated members* rather than comma-separated items: after
    // every `member ,` the parse stack returns to `{ InitPrefix`, which is
    // what lets subparsers merge between the conditional members of
    // Figure 6's array (§4.5's "reduce the empty input to the
    // InitializerList nonterminal"). `{ }`, `{ a }`, `{ a, }`, `{ a, b }`
    // are all covered.
    g.prod("InitMembers", &["InitPrefix"]).passthrough();
    g.prod("InitMembers", &["InitPrefix", "InitItem"]);
    g.prod("InitPrefix", &[]).list();
    g.prod("InitPrefix", &["InitPrefix", "InitItem", ","])
        .list();
    g.prod("InitItem", &["Initializer"]);
    g.prod("InitItem", &["Designation", "Initializer"]);
    g.prod("Designation", &["DesignatorList", "="]);
    g.prod("DesignatorList", &["Designator"]).list();
    g.prod("DesignatorList", &["DesignatorList", "Designator"])
        .list();
    g.prod("Designator", &["[", "ConstantExpression", "]"]);
    // gcc array ranges: [a ... b] = x.
    g.prod(
        "Designator",
        &["[", "ConstantExpression", "...", "ConstantExpression", "]"],
    );
    g.prod("Designator", &[".", "AnyName"]);

    // ---- statements ---------------------------------------------------------

    for s in [
        "LabeledStatement",
        "CompoundStatement",
        "ExpressionStatement",
        "SelectionStatement",
        "IterationStatement",
        "JumpStatement",
        "AsmStatement",
    ] {
        g.prod("Statement", &[s]).passthrough();
    }

    g.prod("LabeledStatement", &["IDENTIFIER", ":", "Statement"]);
    g.prod("LabeledStatement", &["TYPEDEF_NAME", ":", "Statement"]);
    g.prod(
        "LabeledStatement",
        &["case", "ConstantExpression", ":", "Statement"],
    );
    // gcc case ranges.
    g.prod(
        "LabeledStatement",
        &[
            "case",
            "ConstantExpression",
            "...",
            "ConstantExpression",
            ":",
            "Statement",
        ],
    );
    g.prod("LabeledStatement", &["default", ":", "Statement"]);

    g.prod(
        "CompoundStatement",
        &["{", "ScopePush", "BlockItemList", "}"],
    );
    // The empty scope helpers of §5.2: reduced right after `{`, so the
    // plug-in can push a symbol-table scope at the right moment.
    g.prod("ScopePush", &[]).action();

    // Nullable list: a subparser skipping a conditional block item
    // reduces the empty list and reaches the same LR state as the item
    // path, enabling the earliest possible merge.
    g.prod("BlockItemList", &[]).list();
    g.prod("BlockItemList", &["BlockItemList", "BlockItem"])
        .list();
    g.prod("BlockItem", &["Declaration"]).passthrough();
    g.prod("BlockItem", &["Statement"]).passthrough();
    // gcc local labels.
    g.prod("BlockItem", &["__label__", "IdentifierList", ";"]);

    g.prod("ExpressionStatement", &[";"]);
    g.prod("ExpressionStatement", &["Expression", ";"]);

    g.prod(
        "SelectionStatement",
        &["if", "(", "Expression", ")", "Statement"],
    );
    g.prod(
        "SelectionStatement",
        &[
            "if",
            "(",
            "Expression",
            ")",
            "Statement",
            "else",
            "Statement",
        ],
    );
    g.prod(
        "SelectionStatement",
        &["switch", "(", "Expression", ")", "Statement"],
    );

    g.prod(
        "IterationStatement",
        &["while", "(", "Expression", ")", "Statement"],
    );
    g.prod(
        "IterationStatement",
        &["do", "Statement", "while", "(", "Expression", ")", ";"],
    );
    g.prod(
        "IterationStatement",
        &[
            "for",
            "(",
            "ExpressionStatement",
            "ExpressionStatement",
            ")",
            "Statement",
        ],
    );
    g.prod(
        "IterationStatement",
        &[
            "for",
            "(",
            "ExpressionStatement",
            "ExpressionStatement",
            "Expression",
            ")",
            "Statement",
        ],
    );
    // C99 for-declarations.
    g.prod(
        "IterationStatement",
        &[
            "for",
            "(",
            "Declaration",
            "ExpressionStatement",
            ")",
            "Statement",
        ],
    );
    g.prod(
        "IterationStatement",
        &[
            "for",
            "(",
            "Declaration",
            "ExpressionStatement",
            "Expression",
            ")",
            "Statement",
        ],
    );

    g.prod("JumpStatement", &["goto", "AnyName", ";"]);
    // gcc computed goto.
    g.prod("JumpStatement", &["goto", "*", "Expression", ";"]);
    g.prod("JumpStatement", &["continue", ";"]);
    g.prod("JumpStatement", &["break", ";"]);
    g.prod("JumpStatement", &["return", ";"]);
    g.prod("JumpStatement", &["return", "Expression", ";"]);

    // ---- inline assembly ----------------------------------------------------

    g.prod("AsmStatement", &["AsmSpec", ";"]);
    g.prod("AsmSpec", &["asm", "(", "AsmArgs", ")"]);
    g.prod("AsmSpec", &["asm", "AsmQualifiers", "(", "AsmArgs", ")"]);
    g.prod("AsmQualifiers", &["volatile"]).list();
    g.prod("AsmQualifiers", &["inline"]).list();
    g.prod("AsmQualifiers", &["goto"]).list();
    g.prod("AsmQualifiers", &["AsmQualifiers", "volatile"])
        .list();
    g.prod("AsmQualifiers", &["AsmQualifiers", "inline"]).list();
    g.prod("AsmQualifiers", &["AsmQualifiers", "goto"]).list();

    g.prod("AsmArgs", &["StringList"]);
    g.prod("AsmArgs", &["AsmArgs", ":", "AsmOperands"]);
    g.prod("AsmArgs", &["AsmArgs", ":"]);
    g.prod("AsmOperands", &["AsmOperand"]).list();
    g.prod("AsmOperands", &["AsmOperands", ",", "AsmOperand"])
        .list();
    g.prod("AsmOperand", &["StringList", "(", "Expression", ")"]);
    g.prod(
        "AsmOperand",
        &["[", "AnyName", "]", "StringList", "(", "Expression", ")"],
    );
    g.prod("AsmOperand", &["StringList"]);
    g.prod("AsmOperand", &["AnyName"]);

    // ---- top level -------------------------------------------------------------

    // Nullable so a subparser skipping a conditional at the head of a
    // file merges with the declaration path immediately after it.
    g.prod("TranslationUnit", &[]).list();
    g.prod(
        "TranslationUnit",
        &["TranslationUnit", "ExternalDeclaration"],
    )
    .list();

    g.prod("ExternalDeclaration", &["FunctionDefinition"])
        .passthrough();
    g.prod("ExternalDeclaration", &["Declaration"])
        .passthrough();
    g.prod("ExternalDeclaration", &["AsmSpec", ";"]);
    g.prod("ExternalDeclaration", &[";"]);

    g.prod(
        "FunctionDefinition",
        &["DeclarationSpecifiers", "Declarator", "CompoundStatement"],
    );
    // K&R definitions (parameter declaration lists between declarator and
    // body) are omitted: they are obsolete in the kernels this targets and
    // their interaction with post-declarator `__attribute__` makes the
    // grammar ambiguous.

    // ---- merge points (complete syntactic units, §5.1) -------------------

    g.complete(&[
        "TranslationUnit",
        "ExternalDeclaration",
        "FunctionDefinition",
        "Declaration",
        "DeclarationSpecifiers",
        "InitDeclarator",
        "InitDeclaratorList",
        "Statement",
        "CompoundStatement",
        "BlockItem",
        "BlockItemList",
        "Expression",
        "AssignmentExpression",
        "ConditionalExpression",
        "ArgumentExpressionList",
        "ParameterDeclaration",
        "ParameterList",
        "StructDeclaration",
        "StructDeclarationList",
        "StructDeclarator",
        "StructDeclaratorList",
        "Enumerator",
        "EnumMembers",
        "EnumPrefix",
        "InitItem",
        "InitMembers",
        "InitPrefix",
        "Initializer",
        "AttributeList",
        "AsmOperand",
        "AsmOperands",
        "IdentifierList",
        "TypeQualifierList",
        "SpecifierQualifierList",
    ]);

    g.build()
}

#[cfg(test)]
mod build_tests {
    use super::*;

    #[test]
    fn grammar_builds_with_only_the_known_conflicts() {
        let g = c_grammar();
        for c in g.conflicts() {
            // Dangling else (terminal `else`) and statement-head labels
            // (terminal `:`) are the accepted shift-resolutions.
            assert!(
                c.terminal == "else" || c.terminal == ":",
                "unexpected conflict: state {} on {:?}: {}",
                c.state,
                c.terminal,
                c.resolution
            );
        }
    }
}
