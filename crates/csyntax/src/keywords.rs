//! Token classification: preprocessed tokens → grammar terminals.
//!
//! Keyword recognition happens here, after preprocessing — a macro may be
//! named after a keyword, so the lexer cannot commit earlier. gcc spelling
//! variants (`__const`, `__asm__`, ...) normalize to the same terminals.

use superc_cpp::PTok;
use superc_grammar::{Grammar, SymbolId};
use superc_lexer::TokenKind;

/// C99 keywords plus the gcc extensions the grammar knows, with alternate
/// spellings mapping to the same terminal name.
pub(crate) const KEYWORDS: &[(&str, &str)] = &[
    ("auto", "auto"),
    ("break", "break"),
    ("case", "case"),
    ("char", "char"),
    ("const", "const"),
    ("__const", "const"),
    ("__const__", "const"),
    ("continue", "continue"),
    ("default", "default"),
    ("do", "do"),
    ("double", "double"),
    ("else", "else"),
    ("enum", "enum"),
    ("extern", "extern"),
    ("float", "float"),
    ("for", "for"),
    ("goto", "goto"),
    ("if", "if"),
    ("inline", "inline"),
    ("__inline", "inline"),
    ("__inline__", "inline"),
    ("int", "int"),
    ("long", "long"),
    ("register", "register"),
    ("restrict", "restrict"),
    ("__restrict", "restrict"),
    ("__restrict__", "restrict"),
    ("return", "return"),
    ("short", "short"),
    ("signed", "signed"),
    ("__signed", "signed"),
    ("__signed__", "signed"),
    ("sizeof", "sizeof"),
    ("static", "static"),
    ("struct", "struct"),
    ("switch", "switch"),
    ("typedef", "typedef"),
    ("union", "union"),
    ("unsigned", "unsigned"),
    ("void", "void"),
    ("volatile", "volatile"),
    ("__volatile", "volatile"),
    ("__volatile__", "volatile"),
    ("while", "while"),
    ("_Bool", "_Bool"),
    ("_Complex", "_Complex"),
    ("__complex__", "_Complex"),
    // gcc extensions.
    ("asm", "asm"),
    ("__asm", "asm"),
    ("__asm__", "asm"),
    ("typeof", "typeof"),
    ("__typeof", "typeof"),
    ("__typeof__", "typeof"),
    ("__attribute__", "__attribute__"),
    ("__attribute", "__attribute__"),
    ("__extension__", "__extension__"),
    ("__builtin_va_arg", "__builtin_va_arg"),
    ("__builtin_offsetof", "__builtin_offsetof"),
    ("__alignof__", "alignof"),
    ("__alignof", "alignof"),
    ("__label__", "__label__"),
];

/// Classifies a preprocessed token as a terminal of [`crate::c_grammar`].
///
/// Unknown punctuation (which cannot occur in valid C) maps to the
/// `@` terminal so the parser reports a per-configuration syntax error
/// instead of panicking.
pub fn classify(g: &Grammar, t: &PTok) -> SymbolId {
    match t.tok.kind {
        TokenKind::Ident => {
            for &(spelling, term) in KEYWORDS {
                if t.text() == spelling {
                    return g.terminal(term).expect("keyword terminal");
                }
            }
            g.terminal("IDENTIFIER").expect("IDENTIFIER terminal")
        }
        TokenKind::Number | TokenKind::CharLit => {
            g.terminal("CONSTANT").expect("CONSTANT terminal")
        }
        TokenKind::StringLit => g
            .terminal("STRING_LITERAL")
            .expect("STRING_LITERAL terminal"),
        TokenKind::Punct(p) => g
            .terminal(p.as_str())
            .unwrap_or_else(|| g.terminal("@").expect("error terminal")),
        TokenKind::Newline | TokenKind::Eof => {
            unreachable!("newlines and eof do not reach the parser")
        }
    }
}
