//! AST queries used by downstream tools and the examples: declared
//! names with their presence conditions, function definitions, and
//! per-configuration unparsing.

use std::rc::Rc;

use superc_cond::{Cond, CondCtx};
use superc_fmlr::SemVal;

/// A name declared somewhere in a compilation unit, with the presence
/// condition under which the declaration exists.
#[derive(Clone, Debug)]
pub struct DeclaredName {
    /// The declared identifier.
    pub name: Rc<str>,
    /// The production kind that declared it (`Declaration`,
    /// `FunctionDefinition`, `Enumerator`, ...).
    pub kind: Rc<str>,
    /// Presence condition (`None` = present in every configuration).
    pub cond: Option<Cond>,
}

fn first_declarator_ident(v: &SemVal) -> Option<Rc<str>> {
    match v {
        SemVal::Node(n) => match &*n.kind {
            "DirectDeclarator" => match n.children.first() {
                Some(SemVal::Tok(t)) if t.tok.is_ident() => Some(t.tok.text.clone()),
                Some(first) => {
                    if first.as_token().map(|t| t.text()) == Some("(") {
                        n.children.get(1).and_then(first_declarator_ident)
                    } else {
                        first_declarator_ident(first)
                    }
                }
                None => None,
            },
            "Declarator" => n.children.last().and_then(first_declarator_ident),
            "InitDeclarator" | "StructDeclarator" => {
                n.children.first().and_then(first_declarator_ident)
            }
            _ => None,
        },
        _ => None,
    }
}

/// Collects every top-level declared name (declarations, function
/// definitions, enumerators) with its presence condition.
pub fn declared_names(ast: &SemVal) -> Vec<DeclaredName> {
    let mut out = Vec::new();
    ast.visit(&mut |n, cond| {
        let grab = |decl: Option<&SemVal>, out: &mut Vec<DeclaredName>| {
            let mut stack: Vec<&SemVal> = decl.into_iter().collect();
            while let Some(v) = stack.pop() {
                match v {
                    SemVal::Node(m) if &*m.kind == "InitDeclaratorList" => {
                        stack.extend(m.children.iter());
                    }
                    SemVal::Choice(alts) => stack.extend(alts.iter().map(|(_, v)| v)),
                    other => {
                        if let Some(name) = first_declarator_ident(other) {
                            out.push(DeclaredName {
                                name,
                                kind: n.kind.clone(),
                                cond: cond.cloned(),
                            });
                        }
                    }
                }
            }
        };
        match &*n.kind {
            "Declaration" => grab(n.children.get(1), &mut out),
            "FunctionDefinition" => grab(n.children.get(1), &mut out),
            "Enumerator" => {
                if let Some(t) = n.children.first().and_then(SemVal::as_token) {
                    out.push(DeclaredName {
                        name: t.tok.text.clone(),
                        kind: n.kind.clone(),
                        cond: cond.cloned(),
                    });
                }
            }
            _ => {}
        }
    });
    out
}

/// Returns `(function name, presence condition)` for every function
/// definition in the unit.
pub fn function_definitions(ast: &SemVal) -> Vec<(Rc<str>, Option<Cond>)> {
    declared_names(ast)
        .into_iter()
        .filter(|d| &*d.kind == "FunctionDefinition")
        .map(|d| (d.name, d.cond))
        .collect()
}

/// Renders the single-configuration token text selected by `config`
/// (a variable assignment; unset variables are `false`), like running an
/// ordinary preprocessor would have.
pub fn unparse_config(
    ast: &SemVal,
    _ctx: &CondCtx,
    config: &dyn Fn(&str) -> Option<bool>,
) -> String {
    let mut out = String::new();
    fn go(v: &SemVal, out: &mut String, config: &dyn Fn(&str) -> Option<bool>) {
        match v {
            SemVal::Tok(t) => {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(t.text());
            }
            SemVal::Node(n) => {
                for c in &n.children {
                    go(c, out, config);
                }
            }
            SemVal::Choice(alts) => {
                for (c, alt) in alts.iter() {
                    if c.eval(|name| config(name)) {
                        go(alt, out, config);
                        return;
                    }
                }
            }
            SemVal::Empty => {}
        }
    }
    go(ast, &mut out, config);
    out
}
