//! AST queries used by downstream tools and the examples: declared
//! names with their presence conditions, function definitions, and
//! per-configuration unparsing.

use std::rc::Rc;

use superc_cond::{Cond, CondCtx};
use superc_cpp::PTok;
use superc_fmlr::SemVal;
use superc_lexer::SourcePos;

/// A name declared somewhere in a compilation unit, with the presence
/// condition under which the declaration exists.
#[derive(Clone, Debug)]
pub struct DeclaredName {
    /// The declared identifier.
    pub name: Rc<str>,
    /// The production kind that declared it (`Declaration`,
    /// `FunctionDefinition`, `Enumerator`, ...).
    pub kind: Rc<str>,
    /// Presence condition (`None` = present in every configuration).
    pub cond: Option<Cond>,
    /// Source position of the identifier token (`None` only for exotic
    /// declarator shapes where no single token names the declaration).
    pub pos: Option<SourcePos>,
    /// Flattened declaration-specifier text (`static const int`), empty
    /// for enumerators. Choice alternatives flatten in order, so two
    /// declarations only compare equal when their specifiers agree in
    /// every configuration.
    pub specifiers: String,
    /// The declarator's shape with the declared identifier replaced by
    /// `$`: `$` for a plain variable, `* $` for a pointer,
    /// `$ [ 4 ]` for an array, `( * $ ) ( void )` for a function pointer.
    pub shape: String,
}

/// The identifier token naming a (possibly nested or parenthesized)
/// declarator, searching `Declarator`/`DirectDeclarator`/`InitDeclarator`/
/// `StructDeclarator` shapes and descending into static choices (first
/// alternative with a name wins). `None` for abstract declarators and
/// unnamed bit-fields, which declare nothing.
pub fn first_declarator_tok(v: &SemVal) -> Option<&PTok> {
    match v {
        SemVal::Node(n) => match &*n.kind {
            "DirectDeclarator" => match n.children.first() {
                Some(SemVal::Tok(t)) if t.tok.is_ident() => Some(t),
                Some(first) => {
                    if first.as_token().map(|t| t.text()) == Some("(") {
                        n.children.get(1).and_then(first_declarator_tok)
                    } else {
                        first_declarator_tok(first)
                    }
                }
                None => None,
            },
            "Declarator" => n.children.last().and_then(first_declarator_tok),
            "InitDeclarator" | "StructDeclarator" => {
                // The declarator is the first *named* child: unnamed
                // bit-fields (`int : 4;`) start with the `:` token.
                n.children.iter().find_map(first_declarator_tok)
            }
            // Parenthesized declarators reduce through grouping helpers in
            // some grammar layerings; scan children rather than dropping.
            "ParameterDeclaration" | "TypeName" => None,
            _ => None,
        },
        // A conditional declarator (`x` under A, `y` otherwise): report
        // the first alternative's name; callers needing all alternatives
        // walk the choice themselves.
        SemVal::Choice(alts) => alts.iter().find_map(|(_, alt)| first_declarator_tok(alt)),
        _ => None,
    }
}

/// Like [`first_declarator_tok`], but returns just the name.
pub fn first_declarator_ident(v: &SemVal) -> Option<Rc<str>> {
    first_declarator_tok(v).map(|t| t.tok.text.clone())
}

/// Flattens every token in `v` into `out`, space-separated, descending
/// into all choice alternatives in order.
fn flatten_tokens(v: &SemVal, out: &mut String) {
    match v {
        SemVal::Tok(t) => {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(t.text());
        }
        SemVal::Node(n) => {
            for c in &n.children {
                flatten_tokens(c, out);
            }
        }
        SemVal::Choice(alts) => {
            for (_, alt) in alts.iter() {
                flatten_tokens(alt, out);
            }
        }
        SemVal::Empty => {}
    }
}

/// Renders a declarator's shape: its token text with the token at
/// `name_pos` replaced by `$`. For an `InitDeclarator`, the initializer
/// is omitted — the shape describes only the declared object.
fn declarator_shape(v: &SemVal, name_pos: Option<SourcePos>) -> String {
    fn go(v: &SemVal, name_pos: Option<SourcePos>, out: &mut String) {
        match v {
            SemVal::Tok(t) => {
                if !out.is_empty() {
                    out.push(' ');
                }
                if Some(t.tok.pos) == name_pos {
                    out.push('$');
                } else {
                    out.push_str(t.text());
                }
            }
            SemVal::Node(n) => {
                let kids: &[SemVal] = if &*n.kind == "InitDeclarator" {
                    &n.children[..1.min(n.children.len())]
                } else {
                    &n.children
                };
                for c in kids {
                    go(c, name_pos, out);
                }
            }
            SemVal::Choice(alts) => {
                for (_, alt) in alts.iter() {
                    go(alt, name_pos, out);
                }
            }
            SemVal::Empty => {}
        }
    }
    let mut out = String::new();
    go(v, name_pos, &mut out);
    out
}

/// Collects every top-level declared name (declarations, function
/// definitions, enumerators) with its presence condition.
pub fn declared_names(ast: &SemVal) -> Vec<DeclaredName> {
    let mut out = Vec::new();
    ast.visit(&mut |n, cond| {
        let grab = |decl: Option<&SemVal>, specs: Option<&SemVal>, out: &mut Vec<DeclaredName>| {
            let mut specifiers = String::new();
            if let Some(s) = specs {
                flatten_tokens(s, &mut specifiers);
            }
            let mut stack: Vec<(&SemVal, Option<&Cond>)> =
                decl.into_iter().map(|v| (v, cond)).collect();
            while let Some((v, vc)) = stack.pop() {
                match v {
                    SemVal::Node(m) if &*m.kind == "InitDeclaratorList" => {
                        stack.extend(m.children.iter().map(|ch| (ch, vc)));
                    }
                    // Like `SemVal::visit`, an alternative's condition is
                    // absolute and replaces the enclosing one.
                    SemVal::Choice(alts) => {
                        stack.extend(alts.iter().map(|(c, v)| (v, Some(c))));
                    }
                    other => {
                        if let Some(t) = first_declarator_tok(other) {
                            let pos = Some(t.tok.pos);
                            out.push(DeclaredName {
                                name: t.tok.text.clone(),
                                kind: n.kind.clone(),
                                cond: vc.cloned(),
                                pos,
                                specifiers: specifiers.clone(),
                                shape: declarator_shape(other, pos),
                            });
                        }
                    }
                }
            }
        };
        match &*n.kind {
            "Declaration" | "FunctionDefinition" => {
                grab(n.children.get(1), n.children.first(), &mut out)
            }
            "Enumerator" => {
                if let Some(t) = n.children.first().and_then(SemVal::as_token) {
                    out.push(DeclaredName {
                        name: t.tok.text.clone(),
                        kind: n.kind.clone(),
                        cond: cond.cloned(),
                        pos: Some(t.tok.pos),
                        specifiers: String::new(),
                        shape: "$".to_string(),
                    });
                }
            }
            _ => {}
        }
    });
    out
}

/// Returns `(function name, presence condition)` for every function
/// definition in the unit.
pub fn function_definitions(ast: &SemVal) -> Vec<(Rc<str>, Option<Cond>)> {
    declared_names(ast)
        .into_iter()
        .filter(|d| &*d.kind == "FunctionDefinition")
        .map(|d| (d.name, d.cond))
        .collect()
}

/// Renders the single-configuration token text selected by `config`
/// (a variable assignment; unset variables are `false`), like running an
/// ordinary preprocessor would have.
pub fn unparse_config(
    ast: &SemVal,
    _ctx: &CondCtx,
    config: &dyn Fn(&str) -> Option<bool>,
) -> String {
    let mut out = String::new();
    fn go(v: &SemVal, out: &mut String, config: &dyn Fn(&str) -> Option<bool>) {
        match v {
            SemVal::Tok(t) => {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(t.text());
            }
            SemVal::Node(n) => {
                for c in &n.children {
                    go(c, out, config);
                }
            }
            SemVal::Choice(alts) => {
                for (c, alt) in alts.iter() {
                    if c.eval(|name| config(name)) {
                        go(alt, out, config);
                        return;
                    }
                }
            }
            SemVal::Empty => {}
        }
    }
    go(ast, &mut out, config);
    out
}
