use super::*;
use superc_cond::{CondBackend, CondCtx};
use superc_cpp::{CompilationUnit, MemFs, PpOptions, Preprocessor, Profile};
use superc_fmlr::{ParseResult, ParserConfig, SemVal};

fn preprocess(files: &[(&str, &str)]) -> (CompilationUnit, CondCtx) {
    let mut fs = MemFs::new();
    for (p, c) in files {
        fs.add(p, c);
    }
    let ctx = CondCtx::new(CondBackend::Bdd);
    let opts = PpOptions {
        profile: Profile::bare(),
        ..PpOptions::default()
    };
    let mut pp = Preprocessor::new(ctx.clone(), opts, fs);
    (pp.preprocess("main.c").expect("preprocess"), ctx)
}

fn parse(src: &str) -> ParseResult {
    let (unit, ctx) = preprocess(&[("main.c", src)]);
    parse_unit(&unit, &ctx, ParserConfig::full())
}

fn assert_parses(src: &str) -> ParseResult {
    let r = parse(src);
    assert!(
        r.errors.is_empty(),
        "errors for {src:?}: {:?}",
        r.errors.iter().map(|e| format!("{e}")).collect::<Vec<_>>()
    );
    assert!(
        r.accepted.as_ref().expect("accepted").is_true(),
        "partial accept for {src:?}"
    );
    r
}

// ---------------------------------------------------------------------
// Plain C
// ---------------------------------------------------------------------

#[test]
fn declarations_and_functions() {
    assert_parses("int x;\n");
    assert_parses("static const unsigned long *p = 0;\n");
    assert_parses("int add(int a, int b) { return a + b; }\n");
    assert_parses("void noop(void) { }\n");
    assert_parses("int main(int argc, char **argv) { return argc; }\n");
    assert_parses("extern int printf(const char *fmt, ...);\n");
    assert_parses("int (*fp)(int, char *);\n");
    assert_parses("double values[10];\nchar grid[3][4];\n");
}

#[test]
fn expressions_cover_precedence_tower() {
    assert_parses(
        "int f(int a, int b) {\n  int c = a + b * 2 - (a << 1) % 3;\n  c |= a & ~b ^ (a | b);\n  c = a < b ? a : b;\n  c = a ?: b;\n  c += a == b != (a >= b);\n  return !c && a || b;\n}\n",
    );
    assert_parses("int g(void) { int x = 0; x++; --x; return sizeof x + sizeof(int); }\n");
    assert_parses("int h(int *p) { return p[1] + *p + (&p)[0][0]; }\n");
}

#[test]
fn control_flow_statements() {
    assert_parses(
        "int f(int n) {\n  int s = 0;\n  for (int i = 0; i < n; i++) s += i;\n  while (n > 0) n--;\n  do { s--; } while (s > 0);\n  switch (n) {\n  case 0: return 1;\n  case 1 ... 5: return 2;\n  default: break;\n  }\n  if (s) return s; else return -s;\n  goto out;\nout:\n  return 0;\n}\n",
    );
}

#[test]
fn structs_unions_enums() {
    assert_parses(
        "struct point { int x, y; };\nunion u { int i; float f; };\nenum color { RED, GREEN = 2, BLUE, };\nstruct point origin = { 0, 0 };\n",
    );
    assert_parses("struct list { struct list *next; int data : 4; unsigned : 2; };\n");
    assert_parses("struct outer { struct { int a; }; union { int b; float c; }; };\n");
    assert_parses("enum color nested(enum color c) { return c; }\n");
}

#[test]
fn typedefs_drive_reclassification() {
    assert_parses("typedef int myint;\nmyint x = 0;\n");
    assert_parses("typedef struct node { struct node *next; } node_t;\nnode_t *head;\n");
    // The classic ambiguity: `T * p;` must be a declaration when T is a
    // typedef, an expression statement otherwise.
    let r = assert_parses("typedef int T;\nvoid f(void) { T * p; }\n");
    let mut saw_decl = false;
    r.ast.expect("ast").visit(&mut |n, _| {
        if &*n.kind == "Declaration" {
            saw_decl = true;
        }
    });
    assert!(saw_decl, "T * p should parse as a declaration");
    // Without the typedef it is a multiplication.
    let r = assert_parses("void f(int T, int p) { T * p; }\n");
    let mut saw_expr_stmt = false;
    r.ast.expect("ast").visit(&mut |n, _| {
        if &*n.kind == "ExpressionStatement" {
            saw_expr_stmt = true;
        }
    });
    assert!(saw_expr_stmt, "T * p should parse as an expression");
}

#[test]
fn typedef_in_casts_and_sizeof() {
    assert_parses(
        "typedef unsigned long size_tt;\nint f(void) { return (size_tt)4 + sizeof(size_tt); }\n",
    );
    assert_parses("typedef int T;\nT (*get(void))(T) { return 0; }\n");
}

#[test]
fn typedef_names_in_member_positions() {
    // A typedef name used as a member or label must still parse.
    assert_parses("typedef int T;\nstruct s { int T; };\nint f(struct s *p) { return p->T; }\n");
}

#[test]
fn parameters_shadow_typedefs() {
    // `T` is a typedef at file scope but an object parameter in `f`.
    assert_parses("typedef int T;\nvoid f(int T) { T = 1; }\n");
}

#[test]
fn initializers_and_designators() {
    assert_parses("int a[] = { 1, 2, 3, };\n");
    assert_parses("struct p { int x, y; } q = { .x = 1, .y = 2 };\n");
    assert_parses("int m[4] = { [0] = 1, [2] = 3 };\n");
    assert_parses("int r[] = { [0 ... 3] = 7 };\n");
    assert_parses("struct n { int a[2]; } v = { { 1, 2 } };\n");
}

#[test]
fn gcc_extensions() {
    assert_parses("int x = ({ int t = 1; t + 1; });\n"); // statement exprs
    assert_parses("typeof(1 + 1) y = 2;\ttypeof(int) z = 3;\n");
    assert_parses("static int used __attribute__((unused)) = 0;\n");
    assert_parses("struct packed { int v; } __attribute__((packed, aligned(4))) *pp;\n");
    assert_parses("int aligned_v __attribute__((aligned(8))) = 0;\n");
    assert_parses("void f(void) { __label__ retry; retry: f(); goto retry; }\n");
    assert_parses("void g(void *p) { goto *p; }\n");
    assert_parses("void *h(void) { return &&out; out: return 0; }\n");
    assert_parses("__extension__ typedef unsigned long long u64;\nu64 v;\n");
    assert_parses("int q(void) { return __builtin_offsetof(struct { int a; int b; }, b); }\n");
    assert_parses(
        "typedef __builtin_va_list_substitute va;\n"
            .replace("__builtin_va_list_substitute", "int")
            .as_str(),
    );
    assert_parses("struct s2 { int arr[0]; };\n"); // zero-length arrays
}

#[test]
fn inline_assembly() {
    assert_parses("void f(void) { asm(\"nop\"); }\n");
    assert_parses(
        "int g(int x) { asm volatile(\"add %0, %1\" : \"=r\"(x) : \"r\"(x) : \"memory\"); return x; }\n",
    );
    assert_parses("long rd(void) { long v; asm(\"rd %0\" : \"=r\"(v) : ); return v; }\n");
    asm_register_spec();
}

fn asm_register_spec() {
    assert_parses("register long sp asm(\"rsp\");\n");
}

#[test]
fn string_literal_concatenation() {
    assert_parses("const char *s = \"a\" \"b\" \"c\";\n");
}

#[test]
fn compound_literals() {
    assert_parses("struct p { int x, y; };\nvoid f(void) { struct p q = (struct p){ 1, 2 }; }\n");
}

// ---------------------------------------------------------------------
// Variability
// ---------------------------------------------------------------------

/// The paper's Figure 1, nearly verbatim.
const FIG1: &str = r#"
#include "major.h"

#define MOUSEDEV_MIX 31
#define MOUSEDEV_MINOR_BASE 32

static int mousedev_open(struct inode *inode, struct file *file)
{
  int i;

#ifdef CONFIG_INPUT_MOUSEDEV_PSAUX
  if (imajor(inode) == MISC_MAJOR)
    i = MOUSEDEV_MIX;
  else
#endif
  i = iminor(inode) - MOUSEDEV_MINOR_BASE;

  return 0;
}
"#;

#[test]
fn fig1_end_to_end() {
    let (unit, ctx) = preprocess(&[
        ("main.c", FIG1),
        (
            "major.h",
            "#ifndef MAJOR_H\n#define MAJOR_H\n#define MISC_MAJOR 10\n#endif\n",
        ),
    ]);
    let r = parse_unit(&unit, &ctx, ParserConfig::full());
    assert!(
        r.errors.is_empty(),
        "{:?}",
        r.errors.iter().map(|e| format!("{e}")).collect::<Vec<_>>()
    );
    assert!(r.accepted.expect("accepted").is_true());
    let ast = r.ast.expect("ast");
    assert_eq!(ast.choice_count(), 1, "one static choice node (Fig. 1c)");
    // Macros expanded before parsing.
    let with = unparse_config(&ast, &ctx, &|n| {
        Some(n == "defined(CONFIG_INPUT_MOUSEDEV_PSAUX)")
    });
    assert!(with.contains("== 10"), "{with}");
    assert!(with.contains("i = 31"), "{with}");
    let without = unparse_config(&ast, &ctx, &|_| Some(false));
    assert!(!without.contains("31"), "{without}");
    assert!(without.contains("- 32"), "{without}");
}

#[test]
fn conditional_typedef_forks_on_ambiguous_name() {
    // `T` is a typedef only when HAS_T is defined; `T * p;` is then a
    // declaration under HAS_T and a multiplication otherwise.
    let src = "\
#ifdef HAS_T
typedef int T;
#endif
int T_decl(void) {
  int T = 1, p = 2, r;
  r = T * p;
  return r;
}
";
    let r = assert_parses(src);
    let _ = r;
    // The genuinely ambiguous case: T only exists as a typedef in one
    // configuration and nothing else declares it.
    let src = "\
#ifdef HAS_T
typedef int T;
#endif
void f(void) { T * p; }
";
    let r = parse(src);
    // Under HAS_T: declaration. Without: expression over undeclared
    // names — still *syntactically* valid C (undeclared identifiers are a
    // semantic error), so both configurations parse.
    assert!(
        r.errors.is_empty(),
        "{:?}",
        r.errors.iter().map(|e| format!("{e}")).collect::<Vec<_>>()
    );
    assert!(r.accepted.expect("accepted").is_true());
    assert!(r.stats.reclassify_forks >= 1, "ambiguous name must fork");
}

#[test]
fn conditional_struct_members() {
    let src = "\
struct dev {
  int id;
#ifdef CONFIG_PM
  int power_state;
#endif
  void *priv;
};
";
    let r = assert_parses(src);
    assert_eq!(r.ast.expect("ast").choice_count(), 1);
}

#[test]
fn conditional_function_parameters() {
    let src = "\
int probe(
  int dev
#ifdef CONFIG_EXTRA
  , int flags
#endif
) { return dev; }
";
    let r = assert_parses(src);
    assert!(r.ast.expect("ast").choice_count() >= 1);
}

#[test]
fn fig6_initializer_real_c() {
    let mut src = String::from("static int (*check_part[])(struct parsed_partitions *) = {\n");
    for i in 0..18 {
        src.push_str(&format!(
            "#ifdef CONFIG_ACORN_PARTITION_{i}\n  adfspart_check_{i},\n#endif\n"
        ));
    }
    src.push_str("  ((void *)0)\n};\n");
    let r = assert_parses(&src);
    // The paper: 2^18 configurations, constant subparsers.
    assert!(
        r.stats.max_subparsers <= 4,
        "max = {}",
        r.stats.max_subparsers
    );
    assert_eq!(r.ast.expect("ast").choice_count(), 18);
}

#[test]
fn conditional_around_whole_function() {
    let src = "\
#ifdef CONFIG_SMP
int nr_cpus(void) { return 8; }
#else
int nr_cpus(void) { return 1; }
#endif
int query(void) { return nr_cpus(); }
";
    let r = assert_parses(src);
    let names = function_definitions(&r.ast.expect("ast"));
    let nr: Vec<_> = names.iter().filter(|(n, _)| &**n == "nr_cpus").collect();
    assert_eq!(nr.len(), 2);
    assert!(nr.iter().all(|(_, c)| c.is_some()));
}

#[test]
fn multiply_defined_macro_in_code() {
    let src = "\
#ifdef CONFIG_64BIT
#define BITS_PER_LONG 64
#else
#define BITS_PER_LONG 32
#endif
int nbits = BITS_PER_LONG;
unsigned long mask(void) { return (1UL << (BITS_PER_LONG - 1)); }
";
    let r = assert_parses(src);
    assert!(r.ast.expect("ast").choice_count() >= 2);
}

#[test]
fn declared_names_reports_conditions() {
    let src = "\
int always;
#ifdef CONFIG_X
int sometimes;
#endif
enum { CONST_A };
int f(void) { return 0; }
";
    let r = assert_parses(src);
    let names = declared_names(&r.ast.expect("ast"));
    let find = |n: &str| names.iter().find(|d| &*d.name == n).expect(n).clone();
    assert!(find("always").cond.is_none());
    assert!(find("sometimes").cond.is_some());
    assert_eq!(&*find("CONST_A").kind, "Enumerator");
    assert_eq!(&*find("f").kind, "FunctionDefinition");
}

#[test]
fn error_under_one_config_reports_condition() {
    let src = "\
#ifdef BROKEN
int x = ;
#else
int x = 1;
#endif
";
    let r = parse(src);
    assert!(r.ast.is_some());
    assert_eq!(r.errors.len(), 1);
    assert!(r.errors[0].cond.eval(|n| Some(n == "defined(BROKEN)")));
    let acc = r.accepted.expect("accepted");
    assert!(acc.eval(|_| Some(false)));
}

#[test]
fn all_optimization_levels_parse_real_c() {
    let src = "\
#ifdef A
int a;
#endif
#ifdef B
int b;
#endif
int f(void) { return 0; }
";
    for (name, cfg) in ParserConfig::levels() {
        let (unit, ctx) = preprocess(&[("main.c", src)]);
        let r = parse_unit(&unit, &ctx, cfg);
        assert!(
            r.errors.is_empty(),
            "{name}: {:?}",
            r.errors.iter().map(|e| format!("{e}")).collect::<Vec<_>>()
        );
        assert!(r.accepted.expect("accepted").is_true(), "{name}");
    }
}

#[test]
fn unparse_round_trips_each_config() {
    let src = "\
#ifdef CONFIG_A
int a = 1;
#else
int a = 2;
#endif
";
    let (unit, ctx) = preprocess(&[("main.c", src)]);
    let r = parse_unit(&unit, &ctx, ParserConfig::full());
    let ast = r.ast.expect("ast");
    let with = unparse_config(&ast, &ctx, &|n| Some(n == "defined(CONFIG_A)"));
    let without = unparse_config(&ast, &ctx, &|_| Some(false));
    assert_eq!(with, "int a = 1 ;");
    assert_eq!(without, "int a = 2 ;");
}

// ---------------------------------------------------------------------
// C zoo: gnarly-but-legal constructs a kernel-scale parser must accept
// ---------------------------------------------------------------------

#[test]
fn declarator_zoo() {
    // Arrays of pointers, pointers to arrays, function pointers.
    assert_parses("int *ap[10];\n");
    assert_parses("int (*pa)[10];\n");
    assert_parses("int (*fp)(void);\n");
    assert_parses("int (*fpa[4])(int, char *);\n");
    assert_parses("char *(*(*x)(int))(double);\n");
    assert_parses("void (*signal(int sig, void (*handler)(int)))(int);\n");
    assert_parses("int (*const cp)(void) = 0;\n");
    assert_parses("const char *const names[] = { \"a\", \"b\" };\n");
}

#[test]
fn qualifier_and_storage_combinations() {
    assert_parses("static volatile unsigned long jiffies;\n");
    assert_parses("extern const volatile int rtc_seconds;\n");
    assert_parses(
        "register int fast;\nauto_decl();\n"
            .replace("auto_decl();\n", "")
            .as_str(),
    );
    assert_parses("typedef const char *cstr;\ncstr s = 0;\n");
    assert_parses("static inline int f(void) { return 0; }\n");
    assert_parses("int restrict_use(int *restrict p, const int *restrict q) { return *p + *q; }\n");
}

#[test]
fn bitfields_and_unnamed_members() {
    assert_parses("struct flags { unsigned a : 1, b : 2, : 5, c : 1; };\n");
    assert_parses("struct padded { int x; int : 0; int y; };\n");
}

#[test]
fn switch_fallthrough_and_nested_loops() {
    assert_parses(
        "int f(int n) {\n  int s = 0;\n  for (;;) { if (s > n) break; s++; }\n  for (s = 0; ; s++) if (s == 3) break;\n  switch (n) { case 1: case 2: s = 9; default: ; }\n  return s;\n}\n",
    );
}

#[test]
fn comma_and_conditional_expressions() {
    assert_parses("int f(int a, int b) { int c = (a++, b++, a + b); return a ? b : c ? a : b; }\n");
    assert_parses("int g(int a) { return (a = 1, a += 2, a *= 3); }\n");
}

#[test]
fn sizeof_and_casts_zoo() {
    assert_parses("unsigned long s1 = sizeof(struct { int a; });\n");
    assert_parses("unsigned long s2 = sizeof(int[4]);\n");
    assert_parses("unsigned long s3 = sizeof(int (*)(void));\n");
    assert_parses("int f(void *p) { return *(int *)p + ((struct q { int v; } *)p)->v; }\n");
    assert_parses("long l = (long)(short)(char)7;\n");
}

#[test]
fn string_and_char_literal_zoo() {
    assert_parses("const char *s = \"tab\\t nl\\n quote\\\" hex\\x41\";\n");
    assert_parses("int c1 = 'a', c2 = '\\n', c3 = '\\0', c4 = '\\\\';\n");
    assert_parses("const char *wide_adjacent = \"one\" \"two\" \"three\";\n");
}

#[test]
fn function_prototypes_zoo() {
    assert_parses("int v(void);\nint e();\nint k(int, char *, ...);\n");
    assert_parses("void takes_fn(int cb(int), int (*cbp)(int));\n");
    assert_parses("int nested_proto(int (*outer)(int (*inner)(void)));\n");
}

#[test]
fn enum_zoo() {
    assert_parses("enum e1 { A };\nenum e2 { B = 1 << 4, C = B | 2, D = -1 };\n");
    assert_parses("enum fwd_use { X } v = X;\nenum fwd_use w;\n");
}

#[test]
fn struct_recursion_and_forward_refs() {
    assert_parses("struct self { struct self *next; };\n");
    assert_parses("struct a;\nstruct b { struct a *pa; };\nstruct a { struct b inner; };\n");
    assert_parses("union tagged { struct { int tag; }; int raw; };\n");
}

#[test]
fn goto_and_labels_zoo() {
    assert_parses(
        "int f(int n) {\nretry:\n  if (n-- > 0) goto retry;\n  goto done;\ndone:\n  return 0;\n}\n",
    );
}

#[test]
fn statement_expression_zoo() {
    assert_parses("#define sq(x) ({ int t = (x); t * t; })\nint y = sq(4);\n");
    assert_parses("int z = ({ 3; });\n");
}

#[test]
fn typeof_zoo() {
    assert_parses("int base;\ntypeof(base) same;\ntypeof(&base) ptr;\n");
    assert_parses("#define swap(a, b) do { typeof(a) t = (a); (a) = (b); (b) = t; } while (0)\nvoid f(void) { int x = 1, y = 2; swap(x, y); }\n");
}

#[test]
fn attribute_zoo() {
    assert_parses("__attribute__((noreturn)) void die(void);\n");
    assert_parses("int packed_struct_member;\nstruct s { int v __attribute__((aligned(16))); };\n");
    assert_parses("static int fmt(const char *f, ...) __attribute__((format(printf, 1, 2)));\n");
    assert_parses("int sect __attribute__((section(\".init.data\"), unused)) = 0;\n");
}

#[test]
fn conditional_inside_struct_and_enum_and_params() {
    let r = assert_parses(
        "struct dev {\n  int id;\n#ifdef CONFIG_PM\n  int power;\n#endif\n};\nenum s {\n  A,\n#ifdef CONFIG_X\n  B,\n#endif\n  C\n};\n",
    );
    assert_eq!(r.ast.expect("ast").choice_count(), 2);
}

#[test]
fn deeply_nested_conditionals_in_expressions() {
    let src = "\
int pick(void) {
  int v = 0;
#ifdef A
  v += 1;
#ifdef B
  v += 2;
#ifdef C
  v += 4;
#endif
#endif
#endif
  return v;
}
";
    let r = assert_parses(src);
    assert!(r.ast.expect("ast").choice_count() >= 1);
}

#[test]
fn conditional_else_chains_in_code() {
    let src = "\
#if defined(CONFIG_A)
int impl(void) { return 1; }
#elif defined(CONFIG_B)
int impl(void) { return 2; }
#elif defined(CONFIG_C)
int impl(void) { return 3; }
#else
int impl(void) { return 0; }
#endif
int call(void) { return impl(); }
";
    let r = assert_parses(src);
    let names = function_definitions(&r.ast.expect("ast"));
    assert_eq!(names.iter().filter(|(n, _)| &**n == "impl").count(), 4);
}

#[test]
fn do_while_zero_macro_idiom() {
    assert_parses(
        "#define LOCK_AND(x) do { lock(); (x); unlock(); } while (0)\nvoid f(void) { LOCK_AND(g()); }\n",
    );
}

#[test]
fn array_designators_with_enum_indices() {
    assert_parses(
        "enum idx { I0, I1, I2 };\nconst char *names[] = { [I0] = \"zero\", [I2] = \"two\" };\n",
    );
}

#[test]
fn old_style_empty_parameter_functions() {
    assert_parses("int legacy();\nint legacy_def() { return 0; }\n");
}

// ---------------------------------------------------------------------
// Declarator shapes (query::declared_names / first_declarator_tok)
// ---------------------------------------------------------------------

/// Pins the declarator shapes `declared_names` reports: `$` marks the
/// declared identifier, specifiers flatten in source order.
#[test]
fn declared_names_pin_declarator_shapes() {
    let cases: &[(&str, &[(&str, &str, &str)])] = &[
        ("int x;\n", &[("x", "int", "$")]),
        (
            "static const unsigned long *p = 0;\n",
            &[("p", "static const unsigned long", "* $")],
        ),
        // Parenthesized declarator.
        ("int (y);\n", &[("y", "int", "( $ )")]),
        // Function pointer: nested parenthesized declarator.
        (
            "int (*fp)(int, char *);\n",
            &[("fp", "int", "( * $ ) ( int , char * )")],
        ),
        ("char grid[3][4];\n", &[("grid", "char", "$ [ 3 ] [ 4 ]")]),
        (
            "extern int printf(const char *fmt, ...);\n",
            &[("printf", "extern int", "$ ( const char * fmt , ... )")],
        ),
        // Init-declarator lists: one entry per declarator, initializers
        // excluded from the shape.
        (
            "int a = 1, *b, c[2];\n",
            &[
                ("a", "int", "$"),
                ("b", "int", "* $"),
                ("c", "int", "$ [ 2 ]"),
            ],
        ),
        ("int f(void) { return 0; }\n", &[("f", "int", "$ ( void )")]),
    ];
    for (src, expected) in cases {
        let r = assert_parses(src);
        let names = declared_names(&r.ast.expect("ast"));
        assert_eq!(names.len(), expected.len(), "count for {src:?}");
        for &(name, specs, shape) in *expected {
            let d = names
                .iter()
                .find(|d| &*d.name == name)
                .unwrap_or_else(|| panic!("{name} missing in {src:?}"));
            assert_eq!(d.specifiers, specs, "specifiers of {name} in {src:?}");
            assert_eq!(d.shape, shape, "shape of {name} in {src:?}");
            assert!(d.pos.is_some(), "pos of {name} in {src:?}");
        }
    }
}

/// A conditional inside a declarator: both alternatives are reported,
/// each under its own (absolute) presence condition.
#[test]
fn declared_names_descend_choices_with_conditions() {
    let src = "int\n#ifdef A\nx\n#else\ny\n#endif\n;\n";
    let r = assert_parses(src);
    let names = declared_names(&r.ast.expect("ast"));
    assert_eq!(names.len(), 2);
    let find = |n: &str| names.iter().find(|d| &*d.name == n).expect(n).clone();
    let under_a = |n: &str| Some(n == "defined(A)");
    assert!(find("x").cond.expect("cond of x").eval(under_a));
    assert!(!find("y").cond.expect("cond of y").eval(under_a));
    assert_eq!(find("x").shape, "$");
}

/// `first_declarator_tok` on struct declarators: named members and
/// bit-fields resolve to the member name; unnamed bit-fields (whose
/// first child is the `:` punctuator) declare nothing.
#[test]
fn first_declarator_tok_handles_bitfields() {
    fn find_struct_declarators<'a>(v: &'a SemVal, out: &mut Vec<&'a SemVal>) {
        match v {
            SemVal::Node(n) => {
                if &*n.kind == "StructDeclarator" {
                    out.push(v);
                }
                for ch in &n.children {
                    find_struct_declarators(ch, out);
                }
            }
            SemVal::Choice(alts) => {
                for (_, alt) in alts.iter() {
                    find_struct_declarators(alt, out);
                }
            }
            _ => {}
        }
    }
    let r = assert_parses("struct s { int : 4; int named : 2; int plain; };\n");
    let ast = r.ast.expect("ast");
    let mut decls = Vec::new();
    find_struct_declarators(&ast, &mut decls);
    let names: Vec<String> = decls
        .iter()
        .filter_map(|v| first_declarator_ident(v))
        .map(|n| n.to_string())
        .collect();
    assert_eq!(names, ["named", "plain"]);
}
