//! Shared, immutable classification seed tables for the C grammar.
//!
//! Token classification runs once per preprocessed token — the hottest
//! per-token path outside the LR loop itself. The generic
//! [`crate::classify`] resolves terminals by *name* (a linear keyword
//! scan plus string-keyed map lookups), which is fine for one-off use
//! but wasteful when every worker classifies millions of tokens against
//! the same grammar. [`CSeed`] precomputes the resolution once per
//! process: a hashed keyword → terminal table and a punctuator-indexed
//! LUT, both plain data shared by reference from [`crate::c_artifacts`].

use superc_cpp::PTok;
use superc_grammar::{Grammar, SymbolId};
use superc_lexer::{Punct, TokenKind};
use superc_util::FastMap;

use crate::keywords::KEYWORDS;

/// Immutable classification tables for the C grammar, built once per
/// process and shared (by `&'static` reference) across all workers.
pub struct CSeed {
    /// The `IDENTIFIER` terminal.
    pub identifier: SymbolId,
    /// The `TYPEDEF_NAME` terminal (reclassification target).
    pub typedef_name: SymbolId,
    /// The `CONSTANT` terminal.
    pub constant: SymbolId,
    /// The `STRING_LITERAL` terminal.
    pub string_literal: SymbolId,
    /// The `@` error terminal (unknown punctuation maps here so the
    /// parser reports a per-configuration error instead of panicking).
    pub error: SymbolId,
    /// Keyword spelling → terminal (gcc variants normalize here too).
    keywords: FastMap<&'static str, SymbolId>,
    /// Punctuator discriminant → terminal.
    puncts: Vec<SymbolId>,
}

impl CSeed {
    /// Builds the seed tables for `grammar` (the grammar from
    /// [`crate::c_grammar`]).
    pub(crate) fn build(grammar: &Grammar) -> CSeed {
        let term = |n: &str| grammar.terminal(n).expect("C grammar terminal");
        let error = term("@");
        let mut keywords = FastMap::default();
        for &(spelling, terminal) in KEYWORDS {
            keywords.insert(spelling, term(terminal));
        }
        let mut puncts = vec![error; Punct::all().len()];
        for &p in Punct::all() {
            puncts[p as usize] = grammar.terminal(p.as_str()).unwrap_or(error);
        }
        CSeed {
            identifier: term("IDENTIFIER"),
            typedef_name: term("TYPEDEF_NAME"),
            constant: term("CONSTANT"),
            string_literal: term("STRING_LITERAL"),
            error,
            keywords,
            puncts,
        }
    }

    /// Classifies a preprocessed token as a terminal of the C grammar.
    ///
    /// Byte-for-byte equivalent to [`crate::classify`] over the C
    /// grammar, but one hash probe per identifier instead of a linear
    /// scan, and one indexed load per punctuator instead of a
    /// string-keyed map lookup.
    #[inline]
    pub fn classify(&self, t: &PTok) -> SymbolId {
        match t.tok.kind {
            TokenKind::Ident => self
                .keywords
                .get(t.text())
                .copied()
                .unwrap_or(self.identifier),
            TokenKind::Number | TokenKind::CharLit => self.constant,
            TokenKind::StringLit => self.string_literal,
            TokenKind::Punct(p) => self.puncts[p as usize],
            TokenKind::Newline | TokenKind::Eof => {
                unreachable!("newlines and eof do not reach the parser")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use superc_cond::{CondBackend, CondCtx};
    use superc_cpp::{Element, MemFs, PTok, PpOptions, Preprocessor, Profile};

    use crate::{c_artifacts, classify};

    fn walk<'a>(elements: &'a [Element], out: &mut Vec<&'a PTok>) {
        for e in elements {
            match e {
                Element::Token(t) => out.push(t),
                Element::Conditional(c) => {
                    for b in &c.branches {
                        walk(&b.elements, out);
                    }
                }
            }
        }
    }

    /// The seeded fast path must agree with the generic name-resolving
    /// classifier on every token kind, including gcc keyword variants
    /// and unknown-punct error mapping.
    #[test]
    fn seeded_classification_matches_generic() {
        let src = "typedef int t_t;\n\
                   __inline__ static t_t f(volatile unsigned x) {\n\
                     const char *s = \"lit\" \"cat\";\n\
                     int a[3] = { 1, 0x2, 'c' };\n\
                     __asm__(\"nop\");\n\
                     return (t_t)(x << 2) ?: 0;\n\
                   }\n\
                   #define GLUE(a, b) a ## b\n\
                   int GLUE(na, me) = 1;\n";
        let fs = MemFs::new().file("t.c", src);
        let ctx = CondCtx::new(CondBackend::Bdd);
        let opts = PpOptions {
            profile: Profile::bare(),
            ..PpOptions::default()
        };
        let mut pp = Preprocessor::new(ctx.clone(), opts, fs);
        let unit = pp.preprocess("t.c").expect("preprocesses");
        let a = c_artifacts();
        let mut toks = Vec::new();
        walk(&unit.elements, &mut toks);
        assert!(toks.len() > 30, "walked only {} tokens", toks.len());
        for t in toks {
            assert_eq!(
                a.seed.classify(t),
                classify(&a.grammar, t),
                "token {:?} classified differently",
                t.text()
            );
        }
    }
}
