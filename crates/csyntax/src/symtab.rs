//! The configuration-aware symbol table (§5.2).
//!
//! Tracks which names denote types or objects *under which presence
//! conditions* and in which C scopes. A name may be a typedef under one
//! configuration and an object (or free) under another — that is what
//! forces the parser to fork on ambiguously-defined names.
//!
//! Subparsers fork constantly, so cloning must be cheap: scopes are
//! copy-on-write (`Rc`-shared maps mutated via `make_mut`).

use std::rc::Rc;
use superc_util::FastMap;

use superc_cond::Cond;

/// What a name denotes in the ordinary namespace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NameKind {
    /// A typedef name (type alias).
    Typedef,
    /// An object, function, or enum constant name.
    Object,
}

type Entries = Vec<(Cond, NameKind)>;

#[derive(Clone, Debug, Default)]
struct Scope {
    names: Rc<FastMap<Rc<str>, Entries>>,
}

/// Result of a conditional lookup: the conditions under which the name is
/// a typedef, an object, or not locally declared at all.
#[derive(Clone, Debug)]
pub struct Lookup {
    /// Configurations where the name is a typedef.
    pub typedef_cond: Cond,
    /// Configurations where the name is an object/function/enum constant.
    pub object_cond: Cond,
    /// Configurations where no scope declares the name.
    pub free_cond: Cond,
}

/// A configuration-aware, scoped symbol table.
///
/// # Examples
///
/// ```
/// use superc_cond::{CondBackend, CondCtx};
/// use superc_csyntax::{NameKind, SymTab};
///
/// let ctx = CondCtx::new(CondBackend::Bdd);
/// let mut st = SymTab::new();
/// let a = ctx.var("defined(A)");
/// st.define("T".into(), NameKind::Typedef, &a);
/// let l = st.lookup("T", &ctx.tru());
/// assert!(l.typedef_cond.semantically_equal(&a));
/// assert!(l.free_cond.semantically_equal(&a.not()));
/// ```
#[derive(Clone, Debug)]
pub struct SymTab {
    scopes: Vec<Scope>,
}

impl Default for SymTab {
    fn default() -> Self {
        Self::new()
    }
}

impl SymTab {
    /// A table with one (file) scope.
    pub fn new() -> Self {
        SymTab {
            scopes: vec![Scope::default()],
        }
    }

    /// Current scope nesting depth (≥ 1).
    pub fn depth(&self) -> usize {
        self.scopes.len()
    }

    /// Enters a block scope.
    pub fn enter_scope(&mut self) {
        self.scopes.push(Scope::default());
    }

    /// Leaves the innermost scope. The file scope is never popped.
    pub fn exit_scope(&mut self) {
        if self.scopes.len() > 1 {
            self.scopes.pop();
        }
    }

    /// Declares `name` as `kind` in the innermost scope under `cond`,
    /// trimming shadowed same-scope entries exactly like the conditional
    /// macro table.
    pub fn define(&mut self, name: Rc<str>, kind: NameKind, cond: &Cond) {
        if cond.is_false() {
            return;
        }
        let scope = self.scopes.last_mut().expect("at least the file scope");
        let names = Rc::make_mut(&mut scope.names);
        let entries = names.entry(name).or_default();
        let mut kept: Entries = Vec::with_capacity(entries.len() + 1);
        for (c, k) in entries.drain(..) {
            let rest = c.and_not(cond);
            if !rest.is_false() {
                kept.push((rest, k));
            }
        }
        kept.push((cond.clone(), kind));
        *entries = kept;
    }

    /// True when some scope declares `name` as a typedef under *some*
    /// configuration. A cheap pre-screen for reclassification: almost all
    /// identifiers are declared in no scope (or only as objects), and for
    /// those a full conditional [`SymTab::lookup`] — with its presence-
    /// condition clones and per-entry BDD operations — is wasted work.
    pub fn possibly_typedef(&self, name: &str) -> bool {
        self.scopes.iter().any(|s| {
            s.names
                .get(name)
                .is_some_and(|es| es.iter().any(|&(_, k)| k == NameKind::Typedef))
        })
    }

    /// Looks `name` up across scopes, innermost first, with inner entries
    /// shadowing outer ones per configuration.
    pub fn lookup(&self, name: &str, cond: &Cond) -> Lookup {
        let ctx = cond.ctx();
        let mut typedef_cond = ctx.fls();
        let mut object_cond = ctx.fls();
        let mut remaining = cond.clone();
        for scope in self.scopes.iter().rev() {
            if remaining.is_false() {
                break;
            }
            if let Some(entries) = scope.names.get(name) {
                for (c, kind) in entries {
                    let hit = remaining.and(c);
                    if hit.is_false() {
                        continue;
                    }
                    match kind {
                        NameKind::Typedef => typedef_cond = typedef_cond.or(&hit),
                        NameKind::Object => object_cond = object_cond.or(&hit),
                    }
                    remaining = remaining.and_not(c);
                }
            }
        }
        Lookup {
            typedef_cond,
            object_cond,
            free_cond: remaining,
        }
    }

    /// Structural sharing check used to keep merges cheap.
    pub fn same_scopes(&self, other: &SymTab) -> bool {
        self.scopes.len() == other.scopes.len()
            && self
                .scopes
                .iter()
                .zip(&other.scopes)
                .all(|(a, b)| Rc::ptr_eq(&a.names, &b.names))
    }

    /// Combines two tables at the same depth (mergeContexts, §5.2):
    /// shared scopes stay shared; diverged scopes union their entries.
    ///
    /// # Panics
    ///
    /// Panics if the tables have different depths; callers gate merging
    /// on equal depth via `mayMerge`.
    pub fn merge(&self, other: &SymTab) -> SymTab {
        assert_eq!(
            self.scopes.len(),
            other.scopes.len(),
            "mayMerge gates depth"
        );
        let scopes = self
            .scopes
            .iter()
            .zip(&other.scopes)
            .map(|(a, b)| {
                if Rc::ptr_eq(&a.names, &b.names) {
                    a.clone()
                } else {
                    let mut merged: FastMap<Rc<str>, Entries> = (*a.names).clone();
                    for (name, entries) in b.names.iter() {
                        let slot = merged.entry(name.clone()).or_default();
                        for (c, k) in entries {
                            // Skip entries the other side already has.
                            if !slot.iter().any(|(c2, k2)| k2 == k && c2 == c) {
                                slot.push((c.clone(), *k));
                            }
                        }
                    }
                    Scope {
                        names: Rc::new(merged),
                    }
                }
            })
            .collect();
        SymTab { scopes }
    }
}
