//! The C context plug-in (§5.2): typedef-aware reclassification wired
//! into the FMLR engine's four callbacks.
//!
//! The plug-in's production-kind tables ([`CtxTables`]) are pure
//! functions of the grammar, so they live in the `Arc`-shared immutable
//! layer: built once per process with the grammar (see
//! [`crate::c_artifacts`]) and handed to every [`CContext`] by
//! reference-count bump instead of being recomputed per parse.

use std::rc::Rc;
use std::sync::Arc;

use superc_cond::Cond;
use superc_cpp::PTok;
use superc_fmlr::{ContextPlugin, Reclass, SemVal};
use superc_grammar::{Grammar, SymbolId};

use crate::symtab::{NameKind, SymTab};

/// Per-subparser parsing context: the symbol table, the parameter names
/// awaiting the next function-body scope, and the `type_seen` flag that
/// handles typedef-name *redeclaration* (`typedef int T; void f(int T)`).
///
/// `type_seen` is set when a type specifier reduces and cleared when the
/// current specifier run ends (declarator, type name, or declaration
/// reduces). While set, a typedef name is *not* reclassified: a type has
/// already been given, so the name must be a declarator — the rule C
/// parsers with the "lexer hack" use to allow shadowing.
#[derive(Clone)]
pub struct CCtx {
    tab: SymTab,
    pending_params: Vec<(Cond, Rc<str>)>,
    type_seen: bool,
}

/// The grammar-derived, immutable tables behind [`CContext`]: terminal
/// ids and production-kind bit tables indexed by production id.
///
/// A pure function of the grammar — build once per process
/// ([`crate::c_artifacts`] caches one for the C grammar) and share via
/// [`Arc`]; per-parse plug-ins are then free reference-count bumps.
pub struct CtxTables {
    ident: SymbolId,
    typedef_name: SymbolId,
    // Production-kind tables indexed by production id.
    is_declaration: Vec<bool>,
    is_scope_push: Vec<bool>,
    is_compound: Vec<bool>,
    is_enumerator: Vec<bool>,
    is_fn_def: Vec<bool>,
    is_param_decl: Vec<bool>,
    sets_type_seen: Vec<bool>,
    clears_type_seen: Vec<bool>,
}

/// The C context plug-in: a handle to shared [`CtxTables`]. Create via
/// [`CContext::new`] (one-off, builds fresh tables) or
/// [`CContext::seeded`] (shares already-built tables; the corpus path).
pub struct CContext {
    t: Arc<CtxTables>,
}

impl CtxTables {
    /// Builds the plug-in's production tables for `grammar`
    /// (the grammar from [`crate::c_grammar`]).
    pub fn build(grammar: &Grammar) -> Self {
        let n = grammar.num_productions();
        let mut is_declaration = vec![false; n as usize];
        let mut is_scope_push = vec![false; n as usize];
        let mut is_compound = vec![false; n as usize];
        let mut is_enumerator = vec![false; n as usize];
        let mut is_fn_def = vec![false; n as usize];
        let mut is_param_decl = vec![false; n as usize];
        let mut sets_type_seen = vec![false; n as usize];
        let mut clears_type_seen = vec![false; n as usize];
        for p in 0..n {
            match grammar.lhs_name(p) {
                "TypeSpecifier" => sets_type_seen[p as usize] = true,
                // The specifier run is over once a declarator (or whole
                // declaration/type-name) reduces; `Pointer` ends it too so
                // typedef names inside function-pointer types still
                // classify as types.
                "Declaration"
                | "FunctionDefinition"
                | "StructDeclaration"
                | "ParameterDeclaration"
                | "TypeName"
                | "DirectDeclarator"
                | "Pointer"
                | "Statement"
                | "Enumerator" => clears_type_seen[p as usize] = true,
                _ => {}
            }
        }
        for p in 0..n {
            match grammar.lhs_name(p) {
                // Only the base forms define names; the `__extension__`
                // wrapper passes through an already-registered node.
                "Declaration" => {
                    is_declaration[p as usize] = grammar.production(p).rhs.len() >= 2
                        && grammar
                            .symbol_name(grammar.production(p).rhs[0])
                            .starts_with("DeclarationSpecifiers")
                }
                "ScopePush" => is_scope_push[p as usize] = true,
                "CompoundStatement" => is_compound[p as usize] = true,
                "Enumerator" => is_enumerator[p as usize] = true,
                "FunctionDefinition" => is_fn_def[p as usize] = true,
                "ParameterDeclaration" => {
                    let rhs = &grammar.production(p).rhs;
                    is_param_decl[p as usize] =
                        rhs.len() == 2 && grammar.symbol_name(rhs[1]) == "Declarator";
                }
                _ => {}
            }
        }
        CtxTables {
            ident: grammar.terminal("IDENTIFIER").expect("IDENTIFIER"),
            typedef_name: grammar.terminal("TYPEDEF_NAME").expect("TYPEDEF_NAME"),
            is_declaration,
            is_scope_push,
            is_compound,
            is_enumerator,
            is_fn_def,
            is_param_decl,
            sets_type_seen,
            clears_type_seen,
        }
    }
}

impl CContext {
    /// Builds fresh tables for `grammar`. One-off entry point; the
    /// corpus path shares the process-wide tables via [`CContext::seeded`].
    pub fn new(grammar: &Grammar) -> Self {
        CContext {
            t: Arc::new(CtxTables::build(grammar)),
        }
    }

    /// Wraps already-built shared tables — a reference-count bump
    /// instead of eight production-table scans.
    pub fn seeded(tables: Arc<CtxTables>) -> Self {
        CContext { t: tables }
    }
}

/// Walks a declarator subtree collecting `(condition, declared name)`
/// pairs; choice nodes contribute each alternative under its condition.
fn declarator_names(v: &SemVal, cond: &Cond, out: &mut Vec<(Cond, Rc<str>)>) {
    match v {
        SemVal::Node(n) => match &*n.kind {
            "DirectDeclarator" => match n.children.first() {
                Some(SemVal::Tok(t)) if t.tok.is_ident() => {
                    out.push((cond.clone(), t.tok.text.clone()));
                }
                Some(first) => {
                    // `( Declarator )` nests at child 1; array/function
                    // declarators nest at child 0.
                    if first.as_token().map(|t| t.text()) == Some("(") {
                        if let Some(inner) = n.children.get(1) {
                            declarator_names(inner, cond, out);
                        }
                    } else {
                        declarator_names(first, cond, out);
                    }
                }
                None => {}
            },
            "Declarator" => {
                if let Some(last) = n.children.last() {
                    declarator_names(last, cond, out);
                }
            }
            "InitDeclarator" | "StructDeclarator" => {
                if let Some(first) = n.children.first() {
                    declarator_names(first, cond, out);
                }
            }
            // Linearized lists: each element is an InitDeclarator.
            "InitDeclaratorList" => {
                for c in &n.children {
                    declarator_names(c, cond, out);
                }
            }
            _ => {}
        },
        SemVal::Choice(alts) => {
            for (c, alt) in alts.iter() {
                let cc = cond.and(c);
                if !cc.is_false() {
                    declarator_names(alt, &cc, out);
                }
            }
        }
        _ => {}
    }
}

/// Accumulates the conditions under which a `typedef` storage class
/// appears in a specifier subtree.
fn typedef_cond(v: &SemVal, cond: &Cond, acc: &mut Cond) {
    match v {
        SemVal::Tok(t) if t.text() == "typedef" => {
            *acc = acc.or(cond);
        }
        SemVal::Node(n) => {
            for c in &n.children {
                typedef_cond(c, cond, acc);
            }
        }
        SemVal::Choice(alts) => {
            for (c, alt) in alts.iter() {
                let cc = cond.and(c);
                if !cc.is_false() {
                    typedef_cond(alt, &cc, acc);
                }
            }
        }
        _ => {}
    }
}

impl ContextPlugin for CContext {
    type Ctx = CCtx;

    fn initial(&mut self) -> CCtx {
        CCtx {
            tab: SymTab::new(),
            pending_params: Vec::new(),
            type_seen: false,
        }
    }

    fn reclassify(&mut self, ctx: &CCtx, tok: &PTok, term: SymbolId, cond: &Cond) -> Reclass {
        if term != self.t.ident || ctx.type_seen {
            return Reclass::Keep;
        }
        // Pre-screen: only names with a typedef entry somewhere can
        // reclassify, and those are rare — skip the conditional lookup
        // (and all its BDD work) for everything else.
        if !ctx.tab.possibly_typedef(tok.text()) {
            return Reclass::Keep;
        }
        let l = ctx.tab.lookup(tok.text(), cond);
        if l.typedef_cond.is_false() {
            return Reclass::Keep;
        }
        let other = l.object_cond.or(&l.free_cond);
        if other.is_false() {
            return Reclass::Replace(self.t.typedef_name);
        }
        // Ambiguously defined: fork an extra subparser (§5.2).
        Reclass::Split(vec![
            (l.typedef_cond, self.t.typedef_name),
            (other, self.t.ident),
        ])
    }

    fn on_reduce(&mut self, ctx: &mut CCtx, prod: u32, value: &SemVal, cond: &Cond) {
        let p = prod as usize;
        if self.t.sets_type_seen[p] {
            ctx.type_seen = true;
        } else if self.t.clears_type_seen[p] {
            ctx.type_seen = false;
        }
        if self.t.is_scope_push[p] {
            ctx.tab.enter_scope();
            // Parameters of the just-seen declarator become objects in
            // the body scope (so they shadow typedefs).
            for (c, name) in std::mem::take(&mut ctx.pending_params) {
                let cc = cond.and(&c);
                ctx.tab.define(name, NameKind::Object, &cc);
            }
            return;
        }
        if self.t.is_compound[p] {
            ctx.tab.exit_scope();
            return;
        }
        if self.t.is_param_decl[p] {
            if let Some(n) = value.as_node() {
                if let Some(decl) = n.children.get(1) {
                    let mut names = Vec::new();
                    declarator_names(decl, cond, &mut names);
                    ctx.pending_params.extend(names);
                }
            }
            return;
        }
        if self.t.is_enumerator[p] {
            if let Some(n) = value.as_node() {
                if let Some(t) = n.children.first().and_then(SemVal::as_token) {
                    ctx.tab.define(t.tok.text.clone(), NameKind::Object, cond);
                }
            }
            return;
        }
        if self.t.is_declaration[p] {
            // A completed declaration has no unconsumed parameters.
            ctx.pending_params.clear();
            let Some(n) = value.as_node() else { return };
            let (Some(specs), Some(decls)) = (n.children.first(), n.children.get(1)) else {
                return;
            };
            let mut td = cond.ctx().fls();
            typedef_cond(specs, cond, &mut td);
            let mut names = Vec::new();
            declarator_names(decls, cond, &mut names);
            for (c, name) in names {
                let as_typedef = c.and(&td);
                if !as_typedef.is_false() {
                    ctx.tab.define(name.clone(), NameKind::Typedef, &as_typedef);
                }
                let as_object = c.and_not(&td);
                if !as_object.is_false() {
                    ctx.tab.define(name, NameKind::Object, &as_object);
                }
            }
            return;
        }
        if self.t.is_fn_def[p] {
            if let Some(n) = value.as_node() {
                if let Some(decl) = n.children.get(1) {
                    let mut names = Vec::new();
                    declarator_names(decl, cond, &mut names);
                    for (c, name) in names {
                        ctx.tab.define(name, NameKind::Object, &c);
                    }
                }
            }
        }
    }

    fn may_merge(&self, a: &CCtx, b: &CCtx) -> bool {
        a.tab.depth() == b.tab.depth()
    }

    fn merge(&mut self, a: &CCtx, b: &CCtx) -> CCtx {
        CCtx {
            tab: if a.tab.same_scopes(&b.tab) {
                a.tab.clone()
            } else {
                a.tab.merge(&b.tab)
            },
            pending_params: a.pending_params.clone(),
            type_seen: a.type_seen && b.type_seen,
        }
    }
}
