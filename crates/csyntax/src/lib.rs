//! C syntax for SuperC: the C grammar, keyword classification, and the
//! configuration-aware typedef context (§5).
//!
//! SuperC reuses Roskind's C grammar and tokenization rules with common
//! gcc extensions, feeding an off-the-shelf LALR table generator (§5).
//! This crate plays that role:
//!
//! * [`c_grammar`] — a C99-flavored LALR grammar with the gcc extensions
//!   real-world code (and the Linux kernel in particular) relies on:
//!   `typeof`, `__attribute__`, inline `asm`, statement expressions,
//!   case ranges, computed goto, conditional omission (`a ?: b`),
//!   compound literals, and designated initializers. Productions carry
//!   SuperC's AST annotations and `complete` markings.
//! * [`classify`] — maps preprocessed tokens to grammar terminals:
//!   keywords (including gcc spelling variants like `__const`) are
//!   recognized *after* macro expansion, everything else becomes
//!   `IDENTIFIER`, `CONSTANT`, or `STRING_LITERAL`.
//! * [`CContext`] — the context-management plug-in (§5.2): a
//!   configuration-aware symbol table tracks which names denote types
//!   under which presence conditions and in which scopes; `reclassify`
//!   rewrites identifiers to `TYPEDEF_NAME`, *splitting* the presence
//!   condition (forking an extra subparser) when a name is ambiguously
//!   defined.
//! * [`parse_unit`] — glue: preprocessor output → token forest → FMLR
//!   parse with the C context.
//!
//! # Examples
//!
//! ```
//! use superc_cond::{CondBackend, CondCtx};
//! use superc_cpp::{MemFs, Preprocessor, PpOptions, Profile};
//! use superc_csyntax::{c_grammar, parse_unit};
//! use superc_fmlr::ParserConfig;
//!
//! let fs = MemFs::new().file("m.c", "#ifdef FAST\ntypedef int num;\n#else\ntypedef long num;\n#endif\nnum square(num x) { return x * x; }\n");
//! let ctx = CondCtx::new(CondBackend::Bdd);
//! let opts = PpOptions { profile: Profile::bare(), ..Default::default() };
//! let mut pp = Preprocessor::new(ctx.clone(), opts, fs);
//! let unit = pp.preprocess("m.c").unwrap();
//! let result = parse_unit(&unit, &ctx, ParserConfig::full());
//! assert!(result.errors.is_empty());
//! assert!(result.accepted.unwrap().is_true());
//! ```

mod context;
mod grammar;
mod keywords;
mod query;
mod seed;
mod symtab;

pub use context::{CContext, CtxTables};
pub use grammar::{c_artifacts, c_grammar, CArtifacts};
pub use keywords::classify;
pub use query::{
    declared_names, first_declarator_ident, first_declarator_tok, function_definitions,
    unparse_config, DeclaredName,
};
pub use seed::CSeed;
pub use symtab::{NameKind, SymTab};

use superc_cond::CondCtx;
use superc_cpp::CompilationUnit;
use superc_fmlr::{Forest, ParseResult, Parser, ParserConfig};

/// A reusable C parser over the process-wide shared artifacts.
///
/// Construction resolves the shared [`CArtifacts`] once and seeds the
/// engine from them; [`CParser::parse`] can then be called for unit
/// after unit without rebuilding classification tables, context tables,
/// or the engine's kind-name cache. One `CParser` per worker thread is
/// the intended shape — the engine state it reuses is cheap but not
/// `Sync`.
pub struct CParser {
    artifacts: &'static CArtifacts,
    parser: Parser<'static, CContext>,
}

impl CParser {
    /// Creates a parser backed by the shared C artifacts.
    pub fn new(config: ParserConfig) -> Self {
        let artifacts = c_artifacts();
        let plugin = CContext::seeded(artifacts.ctx_tables.clone());
        CParser {
            artifacts,
            parser: Parser::new(&artifacts.grammar, config, plugin),
        }
    }

    /// Parses a preprocessed compilation unit. Equivalent to
    /// [`parse_unit`] with this parser's config, minus the per-call
    /// setup cost.
    pub fn parse(&mut self, unit: &CompilationUnit, ctx: &CondCtx) -> ParseResult {
        let forest = self.build_forest(unit);
        self.parser.parse(&forest, ctx)
    }

    /// Like [`CParser::parse`], but also returns the forest (for token
    /// counts).
    pub fn parse_with_forest(
        &mut self,
        unit: &CompilationUnit,
        ctx: &CondCtx,
    ) -> (ParseResult, Forest) {
        let forest = self.build_forest(unit);
        let r = self.parser.parse(&forest, ctx);
        (r, forest)
    }

    fn build_forest(&self, unit: &CompilationUnit) -> Forest {
        let seed = &self.artifacts.seed;
        Forest::build(&unit.elements, &|t| seed.classify(t))
    }
}

/// Parses a preprocessed compilation unit with the C grammar and the
/// typedef-aware context plug-in.
///
/// One-shot convenience over [`CParser`]; callers parsing many units
/// should hold a `CParser` to amortize per-parse setup.
///
/// See the crate docs for an example.
pub fn parse_unit(unit: &CompilationUnit, ctx: &CondCtx, config: ParserConfig) -> ParseResult {
    CParser::new(config).parse(unit, ctx)
}

/// Like [`parse_unit`], but also returns the forest (for token counts).
pub fn parse_unit_with_forest(
    unit: &CompilationUnit,
    ctx: &CondCtx,
    config: ParserConfig,
) -> (ParseResult, Forest) {
    CParser::new(config).parse_with_forest(unit, ctx)
}

#[cfg(test)]
mod tests;
