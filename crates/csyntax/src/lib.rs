//! C syntax for SuperC: the C grammar, keyword classification, and the
//! configuration-aware typedef context (§5).
//!
//! SuperC reuses Roskind's C grammar and tokenization rules with common
//! gcc extensions, feeding an off-the-shelf LALR table generator (§5).
//! This crate plays that role:
//!
//! * [`c_grammar`] — a C99-flavored LALR grammar with the gcc extensions
//!   real-world code (and the Linux kernel in particular) relies on:
//!   `typeof`, `__attribute__`, inline `asm`, statement expressions,
//!   case ranges, computed goto, conditional omission (`a ?: b`),
//!   compound literals, and designated initializers. Productions carry
//!   SuperC's AST annotations and `complete` markings.
//! * [`classify`] — maps preprocessed tokens to grammar terminals:
//!   keywords (including gcc spelling variants like `__const`) are
//!   recognized *after* macro expansion, everything else becomes
//!   `IDENTIFIER`, `CONSTANT`, or `STRING_LITERAL`.
//! * [`CContext`] — the context-management plug-in (§5.2): a
//!   configuration-aware symbol table tracks which names denote types
//!   under which presence conditions and in which scopes; `reclassify`
//!   rewrites identifiers to `TYPEDEF_NAME`, *splitting* the presence
//!   condition (forking an extra subparser) when a name is ambiguously
//!   defined.
//! * [`parse_unit`] — glue: preprocessor output → token forest → FMLR
//!   parse with the C context.
//!
//! # Examples
//!
//! ```
//! use superc_cond::{CondBackend, CondCtx};
//! use superc_cpp::{Builtins, MemFs, Preprocessor, PpOptions};
//! use superc_csyntax::{c_grammar, parse_unit};
//! use superc_fmlr::ParserConfig;
//!
//! let fs = MemFs::new().file("m.c", "#ifdef FAST\ntypedef int num;\n#else\ntypedef long num;\n#endif\nnum square(num x) { return x * x; }\n");
//! let ctx = CondCtx::new(CondBackend::Bdd);
//! let opts = PpOptions { builtins: Builtins::none(), ..Default::default() };
//! let mut pp = Preprocessor::new(ctx.clone(), opts, fs);
//! let unit = pp.preprocess("m.c").unwrap();
//! let result = parse_unit(&unit, &ctx, ParserConfig::full());
//! assert!(result.errors.is_empty());
//! assert!(result.accepted.unwrap().is_true());
//! ```

mod context;
mod grammar;
mod keywords;
mod query;
mod symtab;

pub use context::CContext;
pub use grammar::c_grammar;
pub use keywords::classify;
pub use query::{
    declared_names, first_declarator_ident, first_declarator_tok, function_definitions,
    unparse_config, DeclaredName,
};
pub use symtab::{NameKind, SymTab};

use superc_cond::CondCtx;
use superc_cpp::CompilationUnit;
use superc_fmlr::{Forest, ParseResult, Parser, ParserConfig};

/// Parses a preprocessed compilation unit with the C grammar and the
/// typedef-aware context plug-in.
///
/// See the crate docs for an example.
pub fn parse_unit(unit: &CompilationUnit, ctx: &CondCtx, config: ParserConfig) -> ParseResult {
    let g = c_grammar();
    let forest = Forest::build(&unit.elements, &|t| classify(g, t));
    let mut parser = Parser::new(g, config, CContext::new(g));
    parser.parse(&forest, ctx)
}

/// Like [`parse_unit`], but also returns the forest (for token counts).
pub fn parse_unit_with_forest(
    unit: &CompilationUnit,
    ctx: &CondCtx,
    config: ParserConfig,
) -> (ParseResult, Forest) {
    let g = c_grammar();
    let forest = Forest::build(&unit.elements, &|t| classify(g, t));
    let mut parser = Parser::new(g, config, CContext::new(g));
    let r = parser.parse(&forest, ctx);
    (r, forest)
}

#[cfg(test)]
mod tests;
